#include "analysis/campaign.hh"

#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <filesystem>
#include <iomanip>
#include <map>
#include <sstream>

#include "analysis/resolve.hh"
#include "sim/checkpoint.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/rand.hh"
#include "support/tracing.hh"

namespace asim {

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Fixed-precision rendering so the JSON report is reproducible. */
std::string
formatRatio(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

void
appendCounts(std::ostringstream &os, const CampaignCounts &c)
{
    os << "\"injections\": " << c.injections
       << ", \"masked\": " << c.masked << ", \"sdc\": " << c.sdc
       << ", \"fault\": " << c.fault << ", \"hang\": " << c.hang
       << ", \"vulnerability\": " << formatRatio(c.vulnerability());
}

} // namespace

// ---------------------------------------------------------------------
// Outcomes and counters
// ---------------------------------------------------------------------

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Sdc:
        return "sdc";
      case FaultOutcome::EngineFault:
        return "fault";
      case FaultOutcome::Hang:
        return "hang";
    }
    return "?";
}

void
CampaignCounts::add(FaultOutcome outcome)
{
    ++injections;
    switch (outcome) {
      case FaultOutcome::Masked:
        ++masked;
        break;
      case FaultOutcome::Sdc:
        ++sdc;
        break;
      case FaultOutcome::EngineFault:
        ++fault;
        break;
      case FaultOutcome::Hang:
        ++hang;
        break;
    }
}

// ---------------------------------------------------------------------
// The state-site universe + the injection primitive
// ---------------------------------------------------------------------

uint64_t
stateSiteCount(const ResolvedSpec &rs)
{
    uint64_t n = 0;
    for (const MemDesc &m : rs.mems)
        n += 1 + static_cast<uint64_t>(m.size);
    return n;
}

FaultSite
stateSiteAt(const ResolvedSpec &rs, uint64_t index)
{
    for (const MemDesc &m : rs.mems) {
        const uint64_t span = 1 + static_cast<uint64_t>(m.size);
        if (index < span) {
            FaultSite site;
            site.component = m.name;
            site.cell =
                index == 0 ? -1 : static_cast<int64_t>(index - 1);
            return site;
        }
        index -= span;
    }
    throw SpecError("Error. State site index out of range.");
}

void
applyFaultToSnapshot(EngineSnapshot &snap, const ResolvedSpec &rs,
                     const FaultSite &site)
{
    const FaultInjector &injector =
        FaultInjectorRegistry::global().get(site.mode);
    const int mem = rs.memIndex(site.component);
    if (mem < 0 ||
        static_cast<size_t>(mem) >= snap.state.mems.size()) {
        throw SpecError("Error. Component <" + site.component +
                        "> holds no state; @cycle faults need a "
                        "memory (omit @cycle to splice a stuck "
                        "bit).");
    }
    MemoryState &m = snap.state.mems[static_cast<size_t>(mem)];
    if (site.cell < 0) {
        m.temp = injector.apply(m.temp, site.bit);
    } else if (static_cast<size_t>(site.cell) < m.cells.size()) {
        m.cells[static_cast<size_t>(site.cell)] = injector.apply(
            m.cells[static_cast<size_t>(site.cell)], site.bit);
    } else {
        throw SpecError(
            "Error. Fault cell " + std::to_string(site.cell) +
            " out of range for memory <" + site.component +
            "> (size " + std::to_string(m.cells.size()) + ").");
    }
}

// ---------------------------------------------------------------------
// CampaignRunner
// ---------------------------------------------------------------------

CampaignRunner::CampaignRunner(CampaignOptions opts)
    : opts_(std::move(opts))
{}

CampaignResult
CampaignRunner::run()
{
    const CampaignOptions &o = opts_;
    if (o.runs == 0)
        throw SimError("campaign needs at least one run");
    if (o.base.ioMode == IoMode::Interactive) {
        throw SimError("campaign instances run concurrently; "
                       "interactive I/O is not supported — use null "
                       "or script I/O per instance");
    }
    // Unknown policies throw here, before any simulation runs.
    FaultInjectorRegistry::global().get(o.injector);

    const auto t0 = std::chrono::steady_clock::now();

    // One resolve (and one compiled artifact per engine family)
    // shared by the golden run and every instance. Campaigns never
    // trace.
    SimulationOptions base = o.base;
    base.config.trace = nullptr;
    base.traceStream = nullptr;
    base = Simulation::shareBatchArtifacts(base);
    const std::shared_ptr<const ResolvedSpec> rs = base.resolved;

    uint64_t horizon = o.horizon;
    if (horizon == 0 && rs->spec.cyclesSpecified)
        horizon = static_cast<uint64_t>(rs->spec.thesisIterations());
    if (horizon == 0) {
        throw SimError("campaign needs a horizon — the spec names no "
                       "cycle count and none was given");
    }
    const uint64_t hangBudget =
        o.watchName.empty() ? 0
                            : (o.hangBudget ? o.hangBudget : horizon);
    const uint64_t goldenCycle =
        o.splice ? 0
                 : (o.goldenCycle ? o.goldenCycle : horizon / 2);
    if (goldenCycle >= horizon) {
        throw SimError("campaign golden cycle " +
                       std::to_string(goldenCycle) +
                       " must precede the horizon " +
                       std::to_string(horizon));
    }
    const uint64_t nStateSites = stateSiteCount(*rs);
    if (!o.splice && nStateSites == 0) {
        throw SimError("campaign has no state to perturb — the spec "
                       "has no memories (use a splice campaign)");
    }

    // ----- Golden run: checkpoint at the golden cycle, reference
    // channels at the horizon (or the completion watchpoint).
    std::string dir = o.workDir;
    bool ownDir = false;
    if (!o.splice && dir.empty()) {
        char tmpl[] = "/tmp/asim-campaign-XXXXXX";
        if (!mkdtemp(tmpl))
            throw SimError("mkdtemp failed");
        dir = tmpl;
        ownDir = true;
    }
    if (!dir.empty())
        std::filesystem::create_directories(dir);

    tracing::Span goldenSpan("campaign.golden", "campaign");
    std::ostringstream goldenIo;
    SimulationOptions goldenOpts = base;
    goldenOpts.ioOut = &goldenIo;
    Simulation golden(goldenOpts);
    golden.run(goldenCycle);
    const std::string goldenIoPrefix = goldenIo.str();

    std::string goldenPath;
    std::shared_ptr<const EngineSnapshot> goldenSnap;
    if (!o.splice) {
        goldenPath =
            (std::filesystem::path(dir) / "golden.ckpt").string();
        golden.saveCheckpoint(goldenPath);
    }

    if (!o.watchName.empty()) {
        if (goldenCycle > 0 &&
            golden.value(o.watchName) == o.watchValue) {
            throw SimError(
                "campaign golden cycle " +
                std::to_string(goldenCycle) +
                " lies after the completion watchpoint <" +
                o.watchName + ":" + std::to_string(o.watchValue) +
                "> — checkpoint earlier");
        }
        golden.runUntilValue(o.watchName, o.watchValue,
                             horizon - goldenCycle);
        if (golden.value(o.watchName) != o.watchValue) {
            throw SimError("campaign golden run never reached the "
                           "completion watchpoint <" + o.watchName +
                           ":" + std::to_string(o.watchValue) +
                           "> within the horizon " +
                           std::to_string(horizon));
        }
    } else {
        golden.run(horizon - goldenCycle);
    }
    const uint64_t goldenCycles = golden.cycle();
    const MachineState goldenState = golden.engine().state();
    const std::string goldenIoFull = goldenIo.str();
    const std::string goldenIoTail =
        goldenIoFull.substr(goldenIoPrefix.size());

    if (!o.splice) {
        // Decode once through the real load path (validating the
        // file we just wrote); instances share the snapshot.
        goldenSnap = std::make_shared<const EngineSnapshot>(
            loadCheckpoint(goldenPath, *rs));
    }
    goldenSpan.finish();

    // ----- Fan-out: sample one fault per run off the (seed, index)
    // stream — the draw order (site, bit, cycle) is part of the
    // report's stability contract.
    BatchOptions batchOpts;
    batchOpts.threads = o.threads;
    batchOpts.captureState = true;
    BatchRunner runner(batchOpts);

    std::vector<FaultSite> sites;
    sites.reserve(o.runs);
    for (uint64_t i = 0; i < o.runs; ++i) {
        SplitMix64 rng = SplitMix64::forIndex(o.seed, i);
        FaultSite site;
        if (o.splice) {
            const auto &comps = rs->spec.comps;
            site.component =
                comps[rng.below(comps.size())].name;
            site.bit = static_cast<int>(rng.below(kMaxBits));
        } else {
            site = stateSiteAt(*rs, rng.below(nStateSites));
            site.bit = static_cast<int>(rng.below(kMaxBits));
            site.atCycle = true;
            site.cycle =
                goldenCycle + rng.below(horizon - goldenCycle);
        }
        site.mode = o.injector;
        sites.push_back(site);

        BatchJob job;
        job.options = base;
        job.options.fault = formatFaultSite(sites.back());
        job.cycles = horizon + hangBudget;
        job.watchName = o.watchName;
        job.watchValue = o.watchValue;
        job.label = job.options.fault;
        if (o.splice) {
            // The spliced spec differs from the shared resolve:
            // drop the shared compiled artifacts (the instance
            // compiles its own) and run from cycle zero.
            job.options.program.reset();
            job.options.nativeBuild.reset();
        } else {
            job.restoreSnapshot = goldenSnap;
        }
        runner.addJob(std::move(job));
    }
    tracing::Span fanoutSpan("campaign.fanout", "campaign");
    fanoutSpan.setArgs("\"runs\":" + std::to_string(o.runs) +
                       ",\"threads\":" + std::to_string(o.threads));
    BatchResult batch = runner.run();
    fanoutSpan.finish();

    // ----- Classify against the golden reference (DESIGN.md §10):
    // EngineFault > Hang > Masked-vs-Sdc. The state diff covers the
    // memories (architectural state); combinational outputs are
    // derived from them every cycle. Transient instances restored at
    // the golden cycle produced only the post-checkpoint output, so
    // they diff against the golden tail.
    CampaignResult result;
    result.runs = o.runs;
    result.seed = o.seed;
    result.injector = o.injector;
    result.engine = base.engine;
    result.splice = o.splice;
    result.goldenCycle = goldenCycle;
    result.horizon = horizon;
    result.hangBudget = hangBudget;
    result.watchName = o.watchName;
    result.watchValue = o.watchValue;
    result.goldenCycles = goldenCycles;

    const std::string &refIo =
        o.splice ? goldenIoFull : goldenIoTail;
    std::map<std::string, CampaignCounts> perComponent;
    result.records.reserve(o.runs);
    tracing::Span classifySpan("campaign.classify", "campaign");
    const bool timed = metrics::timingEnabled();
    for (uint64_t i = 0; i < o.runs; ++i) {
        const InstanceResult &r = batch.instances[i];
        const FaultSite &site = sites[i];
        FaultOutcome outcome;
        if (r.faulted) {
            outcome = FaultOutcome::EngineFault;
        } else if (!o.watchName.empty() && !r.watchpointHit) {
            outcome = FaultOutcome::Hang;
        } else if (r.cyclesRun == goldenCycles &&
                   r.ioText == refIo &&
                   r.state.mems == goldenState.mems) {
            outcome = FaultOutcome::Masked;
        } else {
            outcome = FaultOutcome::Sdc;
        }
        result.total.add(outcome);
        perComponent[site.component].add(outcome);
        if (timed) {
            // Per-classification run-time histograms: hang-budget
            // burn vs fast masking is where campaign wall time goes.
            // Metrics only — table()/json() never read these, so the
            // report bytes stay identical with observability on.
            const std::string name = faultOutcomeName(outcome);
            metrics::counter("campaign.outcome." + name).add();
            metrics::histogram("campaign.run_ns." + name,
                               metrics::Histogram::exponentialBounds(
                                   1000, 4.0, 16))
                .record(static_cast<uint64_t>(r.seconds * 1e9));
        }

        CampaignRecord rec;
        rec.site = formatFaultSite(site);
        rec.component = site.component;
        rec.outcome = outcome;
        rec.cyclesRun = r.cyclesRun;
        rec.fault = r.fault;
        result.records.push_back(std::move(rec));
    }
    result.components.assign(perComponent.begin(),
                             perComponent.end());
    result.threads = batch.threads;
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    if (ownDir) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec); // best effort
    }
    return result;
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

std::string
CampaignResult::table() const
{
    size_t nameWidth = 9;
    for (const auto &[name, counts] : components)
        nameWidth = std::max(nameWidth, name.size());

    std::ostringstream os;
    os << "fault-injection campaign: " << runs << " injections, seed "
       << seed << ", injector " << injector << ", engine " << engine
       << (splice ? ", spec splice" : "") << "\n";
    os << "golden checkpoint @ cycle " << goldenCycle << ", horizon "
       << horizon;
    if (!watchName.empty()) {
        os << ", watch " << watchName << ":" << watchValue
           << " (golden hit @ " << goldenCycles << ", hang budget +"
           << hangBudget << ")";
    }
    os << "\n";

    auto row = [&](const std::string &name,
                   const CampaignCounts &c) {
        os << std::left << std::setw(static_cast<int>(nameWidth + 2))
           << name << std::right << std::setw(11) << c.injections
           << std::setw(9) << c.masked << std::setw(9) << c.sdc
           << std::setw(9) << c.fault << std::setw(9) << c.hang
           << std::setw(12) << std::fixed << std::setprecision(1)
           << (100.0 * c.vulnerability()) << "%\n";
    };
    os << std::left << std::setw(static_cast<int>(nameWidth + 2))
       << "component" << std::right << std::setw(11) << "injections"
       << std::setw(9) << "masked" << std::setw(9) << "sdc"
       << std::setw(9) << "fault" << std::setw(9) << "hang"
       << std::setw(12) << "vulnerable" << "\n";
    for (const auto &[name, counts] : components)
        row(name, counts);
    row("total", total);
    os << runs << " injections in " << std::setprecision(3)
       << seconds << "s ("
       << std::setprecision(0)
       << (seconds > 0 ? static_cast<double>(runs) / seconds : 0.0)
       << "/s, " << threads << " threads)\n";
    return os.str();
}

std::string
CampaignResult::json() const
{
    std::ostringstream os;
    os << "{\n  \"campaign\": {\"runs\": " << runs
       << ", \"seed\": " << seed << ", \"injector\": \""
       << jsonEscape(injector) << "\", \"engine\": \""
       << jsonEscape(engine) << "\", \"splice\": "
       << (splice ? "true" : "false")
       << ", \"golden_cycle\": " << goldenCycle
       << ", \"horizon\": " << horizon
       << ", \"hang_budget\": " << hangBudget << ", \"watch\": \""
       << jsonEscape(watchName) << "\", \"watch_value\": "
       << watchValue << ", \"golden_cycles\": " << goldenCycles
       << "},\n";
    os << "  \"total\": {";
    appendCounts(os, total);
    os << "},\n";
    os << "  \"components\": [\n";
    for (size_t i = 0; i < components.size(); ++i) {
        os << "    {\"component\": \""
           << jsonEscape(components[i].first) << "\", ";
        appendCounts(os, components[i].second);
        os << "}" << (i + 1 < components.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const CampaignRecord &r = records[i];
        os << "    {\"site\": \"" << jsonEscape(r.site)
           << "\", \"component\": \"" << jsonEscape(r.component)
           << "\", \"outcome\": \"" << faultOutcomeName(r.outcome)
           << "\", \"cycles\": " << r.cyclesRun << ", \"fault\": \""
           << jsonEscape(r.fault) << "\"}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace asim
