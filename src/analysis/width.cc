#include "analysis/width.hh"

#include "support/bitops.hh"

namespace asim {

int
widthOf(const Term &term)
{
    switch (term.kind) {
      case Term::Kind::Const:
        return term.width < 0 ? kMaxBits : term.width;
      case Term::Kind::BitString:
        return term.width;
      case Term::Kind::Ref:
        if (term.from < 0)
            return kMaxBits;
        if (term.to < 0)
            return 1;
        return term.to - term.from + 1;
    }
    return kMaxBits;
}

int
widthOf(const Expr &expr)
{
    int n = 0;
    for (const auto &t : expr.terms) {
        n += widthOf(t);
        if (n >= kMaxBits)
            return kMaxBits;
    }
    return n;
}

} // namespace asim
