#include "analysis/depgraph.hh"

#include <queue>
#include <string_view>
#include <unordered_map>

#include "support/logging.hh"

namespace asim {

std::vector<const Expr *>
inputExprs(const Component &c)
{
    std::vector<const Expr *> out;
    switch (c.kind) {
      case CompKind::Alu:
        out = {&c.funct, &c.left, &c.right};
        break;
      case CompKind::Selector:
        out.push_back(&c.select);
        for (const auto &e : c.cases)
            out.push_back(&e);
        break;
      case CompKind::Memory:
        // Memory inputs are latched; they impose no ordering.
        break;
    }
    return out;
}

bool
dependsOn(const Component &a, const Component &b)
{
    for (const Expr *e : inputExprs(a)) {
        for (const auto &t : e->terms) {
            if (t.kind == Term::Kind::Ref && t.ref == b.name)
                return true;
        }
    }
    return false;
}

namespace {

/** Heterogeneous string hashing so the name map is built from the
 *  components' own strings and probed with string_views — no
 *  per-lookup allocation, no O(log n) string compares. */
struct NameHash
{
    using is_transparent = void;
    size_t
    operator()(std::string_view s) const
    {
        return std::hash<std::string_view>{}(s);
    }
};

} // namespace

std::vector<int>
orderCombinational(const std::vector<Component> &comps)
{
    const int n = static_cast<int>(comps.size());

    // One pass: index the combinational components by name. The
    // former pairwise scan re-walked every component's term list per
    // candidate dependency (O(n^2 * names)); a name -> index map makes
    // edge construction O(total input terms).
    std::vector<int> comb;
    std::unordered_map<std::string_view, int, NameHash,
                       std::equal_to<>>
        byName;
    byName.reserve(comps.size());
    for (int i = 0; i < n; ++i) {
        if (comps[i].kind != CompKind::Memory) {
            byName.emplace(comps[i].name, i);
            comb.push_back(i);
        }
    }

    // Flat adjacency keyed by declaration index: dep -> dependents.
    std::vector<std::vector<int>> users(n);
    std::vector<int> indegree(n, 0);
    for (int i : comb) {
        for (const Expr *e : inputExprs(comps[i])) {
            for (const auto &t : e->terms) {
                if (t.kind != Term::Kind::Ref)
                    continue;
                auto it = byName.find(std::string_view(t.ref));
                if (it == byName.end())
                    continue;
                // A self-reference is a one-node cycle: the self edge
                // keeps the in-degree positive and Kahn reports it.
                users[it->second].push_back(i);
                ++indegree[i];
            }
        }
    }

    // Kahn's algorithm; the ready queue is ordered by declaration
    // index so that independent components keep their spec order.
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
    for (int i : comb) {
        if (indegree[i] == 0)
            ready.push(i);
    }

    std::vector<int> order;
    order.reserve(comb.size());
    while (!ready.empty()) {
        int i = ready.top();
        ready.pop();
        order.push_back(i);
        for (int u : users[i]) {
            if (--indegree[u] == 0)
                ready.push(u);
        }
    }

    if (order.size() != comb.size()) {
        std::string names;
        for (int i : comb) {
            if (indegree[i] > 0) {
                if (!names.empty())
                    names += ", ";
                names += comps[i].name;
            }
        }
        throw SpecError("Error. Circular dependency with " + names + ".");
    }
    return order;
}

} // namespace asim
