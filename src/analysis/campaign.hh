/**
 * @file
 * Monte-Carlo fault-injection campaigns (thesis §2.3.2 at scale).
 *
 * A campaign answers "how vulnerable is each component of this
 * machine to a bit upset?" by brute force:
 *
 *  1. **Golden run** — simulate the healthy machine once, leaving a
 *     durable checkpoint (sim/checkpoint.hh) at the golden cycle and
 *     recording the reference final state / output / stop cycle at
 *     the horizon.
 *  2. **Fan-out** — sample `runs` faults with a seed-driven
 *     SplitMix64 stream (support/rand.hh; no global RNG) and run one
 *     perturbed instance per fault on BatchRunner. The default
 *     (transient) campaign restores the shared golden checkpoint and
 *     flips one sampled bit of one sampled state word (memory cell
 *     or output latch) at one sampled cycle in [goldenCycle,
 *     horizon) — amortizing the healthy prefix across every
 *     instance. A splice campaign instead re-runs from cycle zero
 *     with a sampled permanent stuck-at splice (the spliced spec
 *     cannot restore the healthy checkpoint: its identity hash
 *     differs by design).
 *  3. **Classify** — diff every instance against the golden
 *     reference (see FaultOutcome for the contract, DESIGN.md §10
 *     for the rationale) and aggregate per-component counts.
 *
 * The report is deterministic: sampling derives each injection's
 * stream from (seed, index) alone and classification reads
 * BatchRunner's index-ordered results, so CampaignResult::json() is
 * byte-identical across `--threads=1/2/hw` and across repeated runs
 * with the same seed (the JSON deliberately carries no timings or
 * paths; wall-clock lives in the human table only).
 *
 * This header lives in analysis/ beside the fault policies it
 * samples; it is compiled into the sim library (CMakeLists) because
 * the runner drives sim-layer machinery (Simulation, BatchRunner,
 * checkpoints).
 */

#ifndef ASIM_ANALYSIS_CAMPAIGN_HH
#define ASIM_ANALYSIS_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fault.hh"
#include "sim/batch.hh"

namespace asim {

/** What one injected fault did to the run, diffed against the golden
 *  reference. Precedence: EngineFault > Hang > Masked/Sdc. */
enum class FaultOutcome
{
    /** The run completed like the golden one: same stop cycle, same
     *  final machine state, same output text. The upset was
     *  overwritten or never observed. */
    Masked,

    /** The run completed but its final state, output, or stop cycle
     *  differs from the golden reference — silent data corruption. */
    Sdc,

    /** The simulator itself faulted (SimError) — e.g. the flipped
     *  bit formed an out-of-range memory operation. */
    EngineFault,

    /** A watchpoint campaign's instance never reached the completion
     *  watchpoint within horizon + hangBudget cycles. */
    Hang,
};

/** Report key: "masked", "sdc", "fault", "hang". */
const char *faultOutcomeName(FaultOutcome outcome);

/** Everything configuring one campaign. */
struct CampaignOptions
{
    /** Spec source, engine, compiler flags, I/O. Interactive I/O is
     *  refused (instances run concurrently); trace wiring is ignored
     *  — campaign instances never trace. */
    SimulationOptions base;

    /** Injections to run. */
    uint64_t runs = 1000;

    /** Sampling seed; same seed = byte-identical report. */
    uint64_t seed = 1;

    /** Cycle of the golden checkpoint every transient instance
     *  restores (also the lower bound of sampled injection cycles).
     *  0 = horizon / 2. Ignored (forced to 0) by splice campaigns. */
    uint64_t goldenCycle = 0;

    /** Run length; 0 = the spec's `=` count (an error when the spec
     *  names none). */
    uint64_t horizon = 0;

    /** FaultInjectorRegistry policy applied to every sampled site. */
    std::string injector = "toggle";

    /** Sample permanent spec splices (re-run from cycle zero)
     *  instead of transient state upsets (golden restore). */
    bool splice = false;

    /** Optional completion watchpoint: the golden run must reach
     *  `watchName == watchValue` by the horizon; instances that
     *  don't within horizon + hangBudget classify as Hang. Without
     *  it every instance runs exactly to the horizon and Hang cannot
     *  occur. */
    std::string watchName;
    int32_t watchValue = 0;

    /** Extra cycles past the horizon a watchpoint instance may use
     *  before it counts as hung; 0 = horizon (i.e. 2x slack). */
    uint64_t hangBudget = 0;

    /** Worker threads (BatchOptions); 0 = hardware concurrency. */
    unsigned threads = 0;

    /** Directory for the golden checkpoint; empty = a temporary
     *  directory cleaned up after the run. */
    std::string workDir;
};

/** Outcome counters for one component (or the whole campaign). */
struct CampaignCounts
{
    uint64_t injections = 0;
    uint64_t masked = 0;
    uint64_t sdc = 0;
    uint64_t fault = 0;
    uint64_t hang = 0;

    void add(FaultOutcome outcome);

    /** Fraction of injections that were not masked. */
    double vulnerability() const
    {
        return injections == 0
                   ? 0.0
                   : static_cast<double>(injections - masked) /
                         static_cast<double>(injections);
    }
};

/** One injection's sampled fault and classified outcome. */
struct CampaignRecord
{
    std::string site;      ///< canonical fault text (fault grammar)
    std::string component; ///< aggregation key
    FaultOutcome outcome = FaultOutcome::Masked;
    uint64_t cyclesRun = 0;
    std::string fault;     ///< SimError text for EngineFault
};

/** A completed campaign. */
struct CampaignResult
{
    /// @{ Echo of the effective configuration
    uint64_t runs = 0;
    uint64_t seed = 0;
    std::string injector;
    std::string engine;
    bool splice = false;
    uint64_t goldenCycle = 0;
    uint64_t horizon = 0;
    uint64_t hangBudget = 0;
    std::string watchName;
    int32_t watchValue = 0;
    /// @}

    /** Golden reference stop cycle (= horizon, or the watchpoint-hit
     *  cycle). */
    uint64_t goldenCycles = 0;

    CampaignCounts total;

    /** Per-component counters, sorted by component name. Cell and
     *  latch faults aggregate under their memory's name. */
    std::vector<std::pair<std::string, CampaignCounts>> components;

    /** Per-injection records in sampling (index) order. */
    std::vector<CampaignRecord> records;

    /// @{ Timing — table only, never in json()
    double seconds = 0;
    unsigned threads = 0;
    /// @}

    /** Human summary table (vulnerability per component). */
    std::string table() const;

    /** Deterministic JSON report: configuration, totals,
     *  per-component counts, and per-injection records — no
     *  timings, thread counts, or paths (byte-identical across
     *  thread counts and reruns). */
    std::string json() const;
};

/** See the file comment. */
class CampaignRunner
{
  public:
    /** Validates nothing yet; configuration errors (bad spec,
     *  unknown injector, horizon without a cycle count, interactive
     *  I/O...) throw from run(). */
    explicit CampaignRunner(CampaignOptions opts);

    CampaignResult run();

  private:
    CampaignOptions opts_;
};

/**
 * Apply a fault policy to one word of a snapshot's state: memory
 * cell `component[cell]`, or the output latch when site.cell < 0.
 * The single state-injection primitive shared by Simulation's @cycle
 * handling, the campaign sampler, and tests. The site must have been
 * validated (validateFaultSite) against the snapshot's spec.
 */
void applyFaultToSnapshot(EngineSnapshot &snap, const ResolvedSpec &rs,
                          const FaultSite &site);

/**
 * The deterministic state-site universe a transient campaign samples
 * from: for each memory of `rs` in index order, the output latch
 * (cell -1) followed by every cell. @return the number of sites
 */
uint64_t stateSiteCount(const ResolvedSpec &rs);

/** Site `index` (0 .. stateSiteCount-1) of the universe above, as a
 *  partially filled FaultSite (component + cell). */
FaultSite stateSiteAt(const ResolvedSpec &rs, uint64_t index);

} // namespace asim

#endif // ASIM_ANALYSIS_CAMPAIGN_HH
