/**
 * @file
 * Semantic resolution of a parsed specification.
 *
 * Resolution assigns storage slots, pre-computes every expression's
 * field masks and shifts (exactly the arithmetic the thesis' `expr`
 * procedure emits: extract with `land`, then `div`/`*` by a power of
 * two to move the field into its concatenation position), orders the
 * combinational network, cross-checks the declaration list against the
 * definitions (thesis `checkdcl`), and validates references.
 *
 * The ResolvedSpec is the single shared input of the interpreter, the
 * bytecode compiler, and both source code generators.
 */

#ifndef ASIM_ANALYSIS_RESOLVE_HH
#define ASIM_ANALYSIS_RESOLVE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lang/ast.hh"
#include "support/logging.hh"

namespace asim {

/** A fully resolved reference term: value = shift(var & mask). */
struct ResolvedTerm
{
    /** Where the referenced value lives. */
    enum class Bank
    {
        Var,      ///< combinational output slot
        MemTemp,  ///< memory output latch (one-cycle delay)
    };

    Bank bank = Bank::Var;
    int slot = 0;        ///< var slot or memory index
    int32_t mask = -1;   ///< extraction mask (-1 = whole word)
    int shift = 0;       ///< net shift; >0 left, <0 right
    int from = 0;        ///< original subfield low bit (for codegen)
    int fieldWidth = 0;  ///< bits contributed to the concatenation
    bool whole = false;  ///< true for a bare `name` reference
};

/** A resolved expression: constant part plus shifted reference terms.
 *  Terms are stored leftmost-first (matching source order); evaluation
 *  is `constTotal + sum(shift(var & mask))` in any order since fields
 *  are disjoint. */
struct ResolvedExpr
{
    int32_t constTotal = 0;
    std::vector<ResolvedTerm> terms;
    int width = 0;           ///< total bits (<= 31)
    std::string source;      ///< original text

    bool isConstant() const { return terms.empty(); }
};

/** A resolved combinational component (ALU or selector). */
struct CombComp
{
    CompKind kind = CompKind::Alu;
    std::string name;
    int slot = 0;        ///< index into MachineState::vars
    int declIndex = 0;   ///< index into Spec::comps

    /// @{ ALU
    ResolvedExpr funct, left, right;
    bool functConst = false;
    int32_t functValue = 0;
    /// @}

    /// @{ Selector
    ResolvedExpr select;
    std::vector<ResolvedExpr> cases;
    /// @}
};

/** A resolved memory. */
struct MemDesc
{
    std::string name;
    int index = 0;       ///< index into MachineState::mems
    int declIndex = 0;

    ResolvedExpr addr, data, opn;
    bool opnConst = false;
    int32_t opnValue = 0;
    int opnWidth = 0;    ///< widthOf(opn) — gates trace codegen

    int64_t size = 0;
    std::vector<int32_t> init;

    /** Trace-emission decision, derived exactly as the thesis gencode
     *  does from `numberofbits` and constant operations. */
    enum class TraceMode { Never, Always, Runtime };
    TraceMode traceWrites = TraceMode::Never;
    TraceMode traceReads = TraceMode::Never;
};

/** One entry of the per-cycle trace line (declaration-list order). */
struct TraceItem
{
    std::string name;
    bool isMem = false;
    int slot = 0; ///< var slot or memory index
};

/** The resolved specification. */
struct ResolvedSpec
{
    Spec spec;

    /** Combinational components in evaluation (dependency) order. */
    std::vector<CombComp> comb;

    /** Memories in declaration order (their update order). */
    std::vector<MemDesc> mems;

    /** Starred components, declaration-list order. */
    std::vector<TraceItem> traceList;

    int numVarSlots = 0;

    /** Look up a combinational slot / memory index by name; -1 if the
     *  name is not a component of that class. */
    int varSlot(std::string_view name) const;
    int memIndex(std::string_view name) const;

    std::map<std::string, int, std::less<>> varSlots;
    std::map<std::string, int, std::less<>> memIndexes;
};

/**
 * Resolve a parsed specification.
 *
 * @param spec parsed spec (copied into the result)
 * @param diag optional warning collector (declared-but-not-defined,
 *             defined-but-not-declared — thesis `checkdcl`)
 * @throws SpecError on duplicate definitions, unresolved references,
 *         too-wide expressions, bad subfields, or circular
 *         combinational dependencies
 */
ResolvedSpec resolve(const Spec &spec, Diagnostics *diag = nullptr);

/** Convenience: parse + resolve in one step. */
ResolvedSpec resolveText(std::string_view text,
                         Diagnostics *diag = nullptr);

/** Resolve a single expression against an existing ResolvedSpec
 *  (used by tests and tools). */
ResolvedExpr resolveExpr(const Expr &expr, const ResolvedSpec &rs);

/**
 * Stable content identity of a resolved specification: the FNV-1a 64
 * hash of its canonical written form (lang/writer.hh), so the same
 * machine loaded from a file, from text, or re-serialized hashes
 * identically. Used as the checkpoint identity (sim/checkpoint.hh)
 * and as half of the native build cache key (codegen/native.hh).
 */
uint64_t specIdentityHash(const ResolvedSpec &rs);

} // namespace asim

#endif // ASIM_ANALYSIS_RESOLVE_HH
