/**
 * @file
 * Bit-width analysis (thesis `numberofbits`).
 *
 * Computes the number of result bits of an expression, capped at 31.
 * Used by the code generators to decide whether a memory's operation
 * expression can possibly carry the trace-write (bit 2) or trace-read
 * (bit 3) flags, so trace code is only emitted when reachable.
 */

#ifndef ASIM_ANALYSIS_WIDTH_HH
#define ASIM_ANALYSIS_WIDTH_HH

#include "lang/expr.hh"

namespace asim {

/** Width in bits of `expr` (1..31). Terms without an explicit width
 *  (bare constants, whole component references) count as 31. */
int widthOf(const Expr &expr);

/** Width in bits of a single term (-1-width terms count as 31). */
int widthOf(const Term &term);

} // namespace asim

#endif // ASIM_ANALYSIS_WIDTH_HH
