#include "serve/client.hh"

#include "support/logging.hh"
#include "support/serialize.hh"

namespace asim::serve {

ServeClient::ServeClient(const std::string &endpoint)
    : endpoint_(endpoint), channel_(connectEndpoint(endpoint))
{
    std::string resp = call(helloRequest());
    ByteReader r(resp, "hello response");
    uint32_t version = r.u32("server version");
    if (version < kMinProtocolVersion || version > kProtocolVersion) {
        throw SimError("server at " + endpoint_ +
                       " speaks protocol v" + std::to_string(version) +
                       ", this client wants v" +
                       std::to_string(kMinProtocolVersion) + "-v" +
                       std::to_string(kProtocolVersion));
    }
    serverVersion_ = version;
}

std::string
ServeClient::readResponse()
{
    std::string resp;
    if (!channel_.readFrame(resp)) {
        throw SimError("server at " + endpoint_ +
                       " closed the connection");
    }
    ByteReader r(resp, "response");
    auto status = static_cast<Status>(r.u8("status"));
    if (status == Status::Error)
        throw SimError("server: " + r.str("error message"));
    if (status != Status::Ok)
        throw SimError("server at " + endpoint_ +
                       " sent an unknown status byte");
    return resp.substr(1);
}

std::string
ServeClient::call(std::string_view request)
{
    if (!channel_.writeFrame(request)) {
        throw SimError("cannot write to server at " + endpoint_ +
                       " (connection lost)");
    }
    return readResponse();
}

ServeClient::OpenResult
ServeClient::open(const OpenOptions &opts)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Open));
    w.str(opts.name);
    w.str(opts.specText);
    w.str(opts.engine);
    w.u8(static_cast<uint8_t>(opts.io));
    w.u8(opts.trace ? 1 : 0);
    w.u8(opts.aluFixed ? 1 : 0);
    w.u32(opts.partitions == 0 ? 1u : opts.partitions);
    w.u64(opts.inputs.size());
    for (int32_t v : opts.inputs)
        w.i32(v);
    std::string resp = call(w.data());
    ByteReader r(resp, "open response");
    OpenResult res;
    res.id = r.u64("session id");
    res.specHash = r.u64("spec hash");
    res.cycle = r.u64("cycle");
    res.resumed = r.u8("resumed flag") != 0;
    res.defaultCycles = static_cast<int64_t>(r.u64("default cycles"));
    return res;
}

ServeClient::RunResult
ServeClient::run(uint64_t id, uint64_t cycles)
{
    sendRun(id, cycles);
    return readRunReply();
}

void
ServeClient::sendRun(uint64_t id, uint64_t cycles)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Run));
    w.u64(id);
    w.u64(cycles);
    channel_.queueFrame(w.data());
}

ServeClient::RunResult
ServeClient::readRunReply()
{
    std::string resp = readResponse(); // readFrame flushes the queue
    ByteReader r(resp, "run response");
    RunResult res;
    res.cycle = r.u64("cycle");
    res.output = r.str("output");
    return res;
}

int32_t
ServeClient::value(uint64_t id, std::string_view name)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Value));
    w.u64(id);
    w.str(name);
    std::string resp = call(w.data());
    ByteReader r(resp, "value response");
    return r.i32("value");
}

std::string
ServeClient::snapshot(uint64_t id)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Snapshot));
    w.u64(id);
    std::string resp = call(w.data());
    ByteReader r(resp, "snapshot response");
    return r.str("snapshot blob");
}

uint64_t
ServeClient::restore(uint64_t id, std::string_view blob)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Restore));
    w.u64(id);
    w.str(blob);
    std::string resp = call(w.data());
    ByteReader r(resp, "restore response");
    return r.u64("cycle");
}

void
ServeClient::evict(uint64_t id)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Evict));
    w.u64(id);
    call(w.data());
}

void
ServeClient::closeSession(uint64_t id)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Close));
    w.u64(id);
    call(w.data());
}

std::string
ServeClient::statsJson()
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Stats));
    std::string resp = call(w.data());
    ByteReader r(resp, "stats response");
    return r.str("stats json");
}

std::string
ServeClient::metricsJson()
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Metrics));
    std::string resp = call(w.data());
    ByteReader r(resp, "metrics response");
    return r.str("metrics json");
}

void
ServeClient::shutdownServer()
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Shutdown));
    call(w.data());
}

} // namespace asim::serve
