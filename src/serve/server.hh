/**
 * @file
 * The asim-serve daemon core: a multi-tenant session server over the
 * framed protocol in serve/protocol.hh (DESIGN.md §9).
 *
 * One ServeServer owns the listening sockets (Unix-domain and/or
 * loopback TCP), an accept/sweep thread, and one blocking frame-loop
 * thread per client connection. Sessions are **global** (keyed by
 * client-chosen name and by server-assigned id), so any connection
 * may attach to any session — a client can disconnect, reconnect,
 * and continue where it left off.
 *
 * Session lifecycle:
 *
 *   OPEN(name, spec, engine, ...) → a Simulation built through the
 *   ordinary facade (native sessions get their own subprocess
 *   sandbox; repeated native specs dedup through compileSpecCached).
 *   Session output (scripted I/O rendering + optional trace) is
 *   captured into a per-session buffer and streamed back as the
 *   delta of each RUN — byte-identical to a direct Simulation run
 *   wired to one stream.
 *
 *   Idle sessions are **evicted**: serialized to
 *   `<stateDir>/<name>.ckpt` (sim/checkpoint.hh format v1) plus a
 *   `<name>.meta` sidecar carrying everything needed to rebuild the
 *   Simulation (spec text, engine, I/O script, cursors travel inside
 *   the checkpoint). A parked session holds no Simulation, no
 *   subprocess, and no buffers — zero RAM beyond the map entry — and
 *   any later command transparently resumes it. Because the park
 *   artifacts live on disk, OPEN after a daemon restart (even a
 *   SIGKILL) resumes parked sessions by name; graceful stop() parks
 *   every live session first, so a clean shutdown never loses state.
 *
 * Concurrency: the session maps are guarded by one mutex; each
 * session carries its own mutex serializing commands against it, so
 * different sessions execute concurrently while two connections
 * attacking one session are serialized. The idle sweep try-locks and
 * skips busy sessions.
 */

#ifndef ASIM_SERVE_SERVER_HH
#define ASIM_SERVE_SERVER_HH

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"
#include "sim/simulation.hh"
#include "support/serialize.hh"
#include "support/socket.hh"

namespace asim::serve {

/** Daemon configuration. */
struct ServeOptions
{
    /** Unix-domain socket path; empty disables the Unix listener. */
    std::string unixPath;

    /** Loopback TCP port; -1 disables, 0 picks an ephemeral port
     *  (read it back with ServeServer::tcpPort()). */
    int tcpPort = -1;

    /** Directory for parked-session artifacts (created on demand). */
    std::string stateDir = "asim-serve-state";

    /** Park sessions idle for longer than this; <= 0 disables the
     *  automatic sweep (EVICT still parks on demand). */
    int64_t evictAfterMs = 0;

    /** Accept-loop poll timeout — the idle sweep's granularity. */
    int sweepIntervalMs = 200;
};

/** See file comment. */
class ServeServer
{
  public:
    /** Bind the configured listeners and create the state directory.
     *  @throws SimError on bind/listen or directory failure */
    explicit ServeServer(const ServeOptions &opts);

    /** Stops as by stop(true) if still running. */
    ~ServeServer();

    /** Launch the accept/sweep thread. */
    void start();

    /**
     * Stop the daemon: close listeners, drain connection threads,
     * and — when `parkSessions` — evict every live session to disk
     * so a restarted daemon resumes all of them. `parkSessions =
     * false` drops live sessions on the floor (test hook simulating
     * a hard kill: only previously parked sessions survive).
     * Idempotent.
     */
    void stop(bool parkSessions = true);

    /** True after a client issued SHUTDOWN. */
    bool shutdownRequested() const { return shutdownRequested_; }

    /** Block up to `timeoutMs` for a SHUTDOWN request. @return
     *  shutdownRequested() */
    bool waitForShutdown(int timeoutMs);

    /** The bound TCP port (after construction with tcpPort >= 0). */
    uint16_t tcpPort() const;

    const std::string &unixPath() const { return opts_.unixPath; }

    /** The STATS payload: sessions (live/parked/opened/peak),
     *  daemon uptime, per-opcode request counts, evictions/resumes,
     *  per-engine cycle throughput, native compile-cache hits.
     *  Schema: DESIGN.md §9. */
    std::string statsJson() const;

    /** The METRICS payload (protocol v3): uptime plus the full
     *  process metrics-registry exposition (request-latency
     *  histograms, engine counters, pool/partition timing). */
    std::string metricsJson() const;

  private:
    /** One multi-tenant session (see file comment). */
    struct Session
    {
        std::mutex mu; ///< serializes all commands against this session

        uint64_t id = 0;
        std::string name;

        /// @{ Rebuild recipe, persisted in the .meta sidecar.
        std::string specText;
        std::string engine;
        SessionIo io = SessionIo::Null;
        std::vector<int32_t> inputs;
        bool trace = false;
        bool aluFixed = false;
        unsigned partitions = 1; ///< interp worker lanes (>= 1)
        /// @}

        uint64_t specHash = 0;

        /// @{ Live half — both null while parked.
        std::unique_ptr<std::ostringstream> out;
        std::unique_ptr<Simulation> sim;
        /// @}

        /** Output produced but not yet returned by a RUN when the
         *  session parked; re-seeded into `out` on resume. */
        std::string pendingOutput;

        std::atomic<bool> parked{false};
        std::chrono::steady_clock::time_point lastUsed;
    };

    /** One client connection and its frame-loop thread. */
    struct Conn
    {
        FrameChannel channel;
        std::thread thread;
        std::atomic<bool> done{false};
        bool helloDone = false;
        bool dropAfterReply = false;
        bool shutdownAfterReply = false;
        /** Negotiated protocol version (the client's HELLO version;
         *  v2 peers get v2 behavior byte for byte). */
        uint32_t version = kProtocolVersion;
    };

    void acceptLoop();
    void connLoop(Conn *conn);
    void wake();
    void reapConns();
    void sweepIdle();

    std::string handleRequest(std::string_view body, Conn &conn);
    std::string dispatchRequest(std::string_view body, Conn &conn);
    std::string handleOpen(ByteReader &r);
    std::string handleRun(ByteReader &r);
    std::string handleValue(ByteReader &r);
    std::string handleSnapshot(ByteReader &r);
    std::string handleRestore(ByteReader &r);
    std::string handleEvict(ByteReader &r);
    std::string handleClose(ByteReader &r);

    std::string ckptPath(const std::string &name) const;
    std::string metaPath(const std::string &name) const;

    std::shared_ptr<Session> findSession(uint64_t id) const;
    std::shared_ptr<Session>
    sessionFromMeta(const std::string &name) const;

    /** Build (or rebuild) the session's Simulation; restores from the
     *  park checkpoint when `fromCheckpoint`. Caller holds s.mu. */
    void buildSimulation(Session &s, bool fromCheckpoint);

    /** Resume a parked session in place. Caller holds s.mu. */
    void ensureLive(Session &s);

    /** Park a live session to disk. Caller holds s.mu. */
    void parkSession(Session &s);

    /** Count one request against `op` and, when timed, record its
     *  latency into the per-opcode histogram. */
    void noteRequest(uint8_t op, bool timed, uint64_t durNs);

    /** Recount live sessions after a lifecycle transition, updating
     *  the serve.sessions_live gauge and the peak high-water mark.
     *  Takes sessionsMu_; safe to call while holding a session's mu
     *  (nothing locks a session's mu under sessionsMu_). */
    void noteSessionCensus();

    ServeOptions opts_;
    Socket unixListener_;
    Socket tcpListener_;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;

    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;
    std::mutex stopMu_;

    std::atomic<bool> shutdownRequested_{false};
    mutable std::mutex shutdownMu_;
    std::condition_variable shutdownCv_;

    mutable std::mutex connsMu_;
    std::vector<std::unique_ptr<Conn>> conns_;

    mutable std::mutex sessionsMu_;
    std::map<std::string, std::shared_ptr<Session>> byName_;
    std::map<uint64_t, std::shared_ptr<Session>> byId_;
    uint64_t nextId_ = 1;

    /// @{ Statistics (statsMu_ guards the non-atomic aggregates).
    mutable std::mutex statsMu_;

    /** One count slot per request opcode (index = raw opcode value;
     *  slot 0 collects unknown/malformed opcodes). */
    static constexpr size_t kOpSlots =
        static_cast<size_t>(Op::Metrics) + 1;
    std::array<std::atomic<uint64_t>, kOpSlots> opCounts_{};

    std::chrono::steady_clock::time_point startTime_ =
        std::chrono::steady_clock::now();
    std::atomic<uint64_t> peakLive_{0};

    std::atomic<uint64_t> sessionsOpened_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> resumes_{0};
    std::atomic<uint64_t> runCommands_{0};
    std::atomic<uint64_t> compileRequests_{0};
    uint64_t nativeCompilesAtStart_ = 0;
    struct EngineUse
    {
        uint64_t cycles = 0;
        uint64_t ns = 0;
    };
    std::map<std::string, EngineUse> engineUse_;
    /// @}
};

} // namespace asim::serve

#endif // ASIM_SERVE_SERVER_HH
