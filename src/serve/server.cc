#include "serve/server.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "codegen/native.hh"
#include "sim/checkpoint.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/tracing.hh"

namespace asim::serve {

namespace {

/** Session .meta sidecar magic + version (DESIGN.md §9). */
constexpr std::string_view kMetaMagic = "ASRVMETA";
// v2 appends a u32 partition-lane count after the alu flag; v1 files
// (no field) read back as serial sessions.
constexpr uint32_t kMetaVersion = 2;

/** Session names become filename components under stateDir, so the
 *  charset is locked down hard (no separators, no empty, bounded). */
bool
validSessionName(const std::string &name)
{
    if (name.empty() || name.size() > 64)
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::vector<int32_t>
readInputs(ByteReader &r)
{
    uint64_t n = r.count("open input count", 1u << 24, 4);
    std::vector<int32_t> inputs;
    inputs.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        inputs.push_back(r.i32("open input"));
    return inputs;
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Stable lowercase opcode names for the stats/metrics expositions
 *  (slot 0 = anything that is not a known opcode). */
const char *
opName(size_t slot)
{
    switch (static_cast<Op>(slot)) {
    case Op::Hello:
        return "hello";
    case Op::Open:
        return "open";
    case Op::Run:
        return "run";
    case Op::Value:
        return "value";
    case Op::Snapshot:
        return "snapshot";
    case Op::Restore:
        return "restore";
    case Op::Evict:
        return "evict";
    case Op::Close:
        return "close";
    case Op::Stats:
        return "stats";
    case Op::Shutdown:
        return "shutdown";
    case Op::Metrics:
        return "metrics";
    }
    return "unknown";
}

} // namespace

ServeServer::ServeServer(const ServeOptions &opts)
    : opts_(opts)
{
    if (opts_.unixPath.empty() && opts_.tcpPort < 0)
        throw SimError("asim-serve needs a unix path or a tcp port");
    std::error_code ec;
    std::filesystem::create_directories(opts_.stateDir, ec);
    if (ec) {
        throw SimError("cannot create state directory " +
                       opts_.stateDir + ": " + ec.message());
    }
    if (!opts_.unixPath.empty())
        unixListener_ = listenUnix(opts_.unixPath);
    if (opts_.tcpPort >= 0)
        tcpListener_ = listenTcp(static_cast<uint16_t>(opts_.tcpPort));

    int fds[2];
    if (::pipe(fds) != 0)
        throw SimError(std::string("cannot create wake pipe: ") +
                       std::strerror(errno));
    wakeRead_ = fds[0];
    wakeWrite_ = fds[1];
    nativeCompilesAtStart_ = nativeCompileCount();
}

ServeServer::~ServeServer()
{
    stop(true);
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
}

void
ServeServer::start()
{
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
ServeServer::wake()
{
    char b = 'w';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &b, 1);
}

uint16_t
ServeServer::tcpPort() const
{
    return localPort(tcpListener_);
}

bool
ServeServer::waitForShutdown(int timeoutMs)
{
    std::unique_lock<std::mutex> lock(shutdownMu_);
    shutdownCv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                         [this] { return shutdownRequested_.load(); });
    return shutdownRequested_;
}

void
ServeServer::stop(bool parkSessions)
{
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        if (stopped_)
            return;
        stopped_ = true;
    }
    stopping_ = true;
    wake();
    if (acceptThread_.joinable())
        acceptThread_.join();

    // Unblock every connection thread sitting in a read, then join.
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        for (auto &c : conns_)
            c->channel.socket().shutdownBoth();
    }
    for (;;) {
        std::unique_ptr<Conn> conn;
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            if (conns_.empty())
                break;
            conn = std::move(conns_.back());
            conns_.pop_back();
        }
        if (conn->thread.joinable())
            conn->thread.join();
    }

    unixListener_.close();
    tcpListener_.close();
    if (!opts_.unixPath.empty())
        ::unlink(opts_.unixPath.c_str());

    std::vector<std::shared_ptr<Session>> sessions;
    {
        std::lock_guard<std::mutex> lock(sessionsMu_);
        for (auto &[name, s] : byName_)
            sessions.push_back(s);
        byName_.clear();
        byId_.clear();
    }
    for (auto &s : sessions) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (s->parked || !s->sim)
            continue;
        if (parkSessions) {
            try {
                parkSession(*s);
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "asim-serve: cannot park session %s: %s\n",
                             s->name.c_str(), e.what());
            }
        } else {
            s->sim.reset(); // dropped, as a killed daemon would
            s->out.reset();
        }
    }
}

// ---------------------------------------------------------------------------
// Accept loop + connection threads

void
ServeServer::acceptLoop()
{
    while (!stopping_) {
        std::vector<int> fds{wakeRead_};
        std::vector<Socket *> listeners{nullptr};
        if (unixListener_.valid()) {
            fds.push_back(unixListener_.fd());
            listeners.push_back(&unixListener_);
        }
        if (tcpListener_.valid()) {
            fds.push_back(tcpListener_.fd());
            listeners.push_back(&tcpListener_);
        }
        int idx = pollReadable(fds, opts_.sweepIntervalMs);
        if (stopping_)
            break;
        if (idx == 0) {
            char buf[64];
            [[maybe_unused]] ssize_t n =
                ::read(wakeRead_, buf, sizeof(buf));
        } else if (idx > 0) {
            Socket sock = acceptConnection(*listeners[idx]);
            if (sock.valid()) {
                auto conn = std::make_unique<Conn>();
                conn->channel = FrameChannel(std::move(sock));
                Conn *raw = conn.get();
                {
                    std::lock_guard<std::mutex> lock(connsMu_);
                    conns_.push_back(std::move(conn));
                }
                raw->thread =
                    std::thread([this, raw] { connLoop(raw); });
            }
        }
        sweepIdle();
        reapConns();
    }
}

void
ServeServer::reapConns()
{
    std::vector<std::unique_ptr<Conn>> finished;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if ((*it)->done) {
                finished.push_back(std::move(*it));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &c : finished) {
        if (c->thread.joinable())
            c->thread.join();
    }
}

void
ServeServer::connLoop(Conn *conn)
{
    std::string req;
    while (!stopping_ && conn->channel.readFrame(req)) {
        std::string resp = handleRequest(req, *conn);
        conn->channel.queueFrame(resp);
        if (conn->dropAfterReply)
            break;
    }
    conn->channel.flush(); // best effort; the peer may be gone
    if (conn->shutdownAfterReply) {
        // The SHUTDOWN reply is on the wire; now let stop() run.
        shutdownRequested_ = true;
        shutdownCv_.notify_all();
        wake();
    }
    conn->done = true;
}

// ---------------------------------------------------------------------------
// Request dispatch

std::string
ServeServer::handleRequest(std::string_view body, Conn &conn)
{
    // Peek the opcode before dispatch so even malformed requests are
    // counted (slot 0) and timed like any other.
    const uint8_t op =
        body.empty() ? 0 : static_cast<uint8_t>(body[0]);
    const bool timed = metrics::timingEnabled();
    const uint64_t t0 = timed ? nowNs() : 0;
    std::string resp = dispatchRequest(body, conn);
    noteRequest(op, timed, timed ? nowNs() - t0 : 0);
    return resp;
}

void
ServeServer::noteRequest(uint8_t op, bool timed, uint64_t durNs)
{
    const size_t slot = op < kOpSlots ? op : 0;
    opCounts_[slot].fetch_add(1, std::memory_order_relaxed);
    if (!timed)
        return;
    // One latency histogram per opcode, resolved once for the process.
    static const std::array<metrics::Histogram *, kOpSlots> hists = [] {
        std::array<metrics::Histogram *, kOpSlots> h{};
        for (size_t i = 0; i < kOpSlots; ++i) {
            h[i] = &metrics::histogram(
                std::string("serve.request_ns.") + opName(i),
                metrics::Histogram::exponentialBounds(1000, 2.0, 24));
        }
        return h;
    }();
    hists[slot]->record(durNs);
}

std::string
ServeServer::dispatchRequest(std::string_view body, Conn &conn)
{
    try {
        ByteReader r(body, "request");
        auto op = static_cast<Op>(r.u8("opcode"));
        if (!conn.helloDone && op != Op::Hello) {
            conn.dropAfterReply = true;
            return errorResponse("expected HELLO first");
        }
        switch (op) {
        case Op::Hello: {
            std::string magic = r.str("hello magic");
            uint32_t version = r.u32("hello version");
            if (magic != kHelloMagic ||
                version < kMinProtocolVersion ||
                version > kProtocolVersion)
            {
                conn.dropAfterReply = true;
                return errorResponse(
                    "protocol mismatch: want " +
                    std::string(kHelloMagic) + " v" +
                    std::to_string(kMinProtocolVersion) + "-v" +
                    std::to_string(kProtocolVersion) + ", got " +
                    magic + " v" + std::to_string(version));
            }
            conn.helloDone = true;
            // Echo the client's version: an older peer sees exactly
            // the handshake its own kProtocolVersion check expects.
            conn.version = version;
            ByteWriter w;
            w.u8(static_cast<uint8_t>(Status::Ok));
            w.u32(conn.version);
            w.str("asim-serve");
            return std::move(w).take();
        }
        case Op::Open:
            return handleOpen(r);
        case Op::Run:
            return handleRun(r);
        case Op::Value:
            return handleValue(r);
        case Op::Snapshot:
            return handleSnapshot(r);
        case Op::Restore:
            return handleRestore(r);
        case Op::Evict:
            return handleEvict(r);
        case Op::Close:
            return handleClose(r);
        case Op::Stats: {
            ByteWriter w;
            w.u8(static_cast<uint8_t>(Status::Ok));
            w.str(statsJson());
            return std::move(w).take();
        }
        case Op::Metrics: {
            if (conn.version < 3)
                return errorResponse("METRICS needs protocol v3");
            ByteWriter w;
            w.u8(static_cast<uint8_t>(Status::Ok));
            w.str(metricsJson());
            return std::move(w).take();
        }
        case Op::Shutdown: {
            // Don't signal yet: stop() races the reply otherwise.
            // connLoop flushes this frame first, then signals.
            conn.dropAfterReply = true;
            conn.shutdownAfterReply = true;
            ByteWriter w;
            w.u8(static_cast<uint8_t>(Status::Ok));
            return std::move(w).take();
        }
        }
        conn.dropAfterReply = true;
        return errorResponse("unknown opcode");
    } catch (const std::exception &e) {
        return errorResponse(e.what());
    }
}

// ---------------------------------------------------------------------------
// Session helpers

std::string
ServeServer::ckptPath(const std::string &name) const
{
    return opts_.stateDir + "/" + name + ".ckpt";
}

std::string
ServeServer::metaPath(const std::string &name) const
{
    return opts_.stateDir + "/" + name + ".meta";
}

std::shared_ptr<ServeServer::Session>
ServeServer::findSession(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(sessionsMu_);
    auto it = byId_.find(id);
    if (it == byId_.end())
        throw SimError("unknown session id " + std::to_string(id));
    return it->second;
}

/** Parse a .meta sidecar into a parked Session (no id yet). The CRC
 *  trailer is verified before any field is trusted, same discipline
 *  as checkpoint files. */
std::shared_ptr<ServeServer::Session>
ServeServer::sessionFromMeta(const std::string &name) const
{
    const std::string path = metaPath(name);
    std::string bytes;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            return nullptr;
        char buf[1 << 16];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.append(buf, got);
        std::fclose(f);
    }
    if (bytes.size() < 4)
        throw SimError(path + ": truncated session meta");
    std::string_view payload(bytes.data(), bytes.size() - 4);
    ByteReader tail(std::string_view(bytes).substr(bytes.size() - 4),
                    path);
    if (crc32(payload) != tail.u32("meta checksum"))
        throw SimError(path + ": session meta checksum mismatch");

    ByteReader r(payload, path);
    if (r.bytes(kMetaMagic.size(), "meta magic") != kMetaMagic)
        throw SimError(path + ": not a session meta file");
    uint32_t version = r.u32("meta version");
    if (version > kMetaVersion) {
        throw SimError(path + ": meta version " +
                       std::to_string(version) +
                       " is newer than this build supports (" +
                       std::to_string(kMetaVersion) + ")");
    }
    auto s = std::make_shared<Session>();
    s->name = name;
    s->specHash = r.u64("meta spec hash");
    s->engine = r.str("meta engine");
    s->specText = r.str("meta spec text");
    s->io = static_cast<SessionIo>(r.u8("meta io mode"));
    s->trace = r.u8("meta trace flag") != 0;
    s->aluFixed = r.u8("meta alu flag") != 0;
    s->partitions =
        version >= 2 ? r.u32("meta partitions") : 1;
    if (s->partitions == 0)
        s->partitions = 1;
    s->inputs = readInputs(r);
    s->pendingOutput = r.str("meta pending output");
    s->parked = true;
    s->lastUsed = std::chrono::steady_clock::now();
    return s;
}

void
ServeServer::buildSimulation(Session &s, bool fromCheckpoint)
{
    SimulationOptions o;
    o.specText = s.specText;
    o.engine = s.engine;
    o.config.aluSemantics =
        s.aluFixed ? AluSemantics::Fixed : AluSemantics::Thesis;
    o.ioMode =
        s.io == SessionIo::Script ? IoMode::Script : IoMode::Null;
    o.scriptInputs = s.inputs;
    o.partitions = s.partitions;
    // One stream takes both scripted-I/O rendering and the trace so
    // the session's byte stream is identical to a direct run wired
    // the same way; seeded with output a previous incarnation
    // produced but never returned.
    s.out = std::make_unique<std::ostringstream>(
        s.pendingOutput, std::ios::out | std::ios::ate);
    s.pendingOutput.clear();
    o.ioOut = s.out.get();
    if (s.trace)
        o.traceStream = s.out.get();
    if (s.engine == "native")
        compileRequests_ += 1;
    s.sim = std::make_unique<Simulation>(o);
    s.specHash = s.sim->specHash();
    if (fromCheckpoint)
        s.sim->restoreCheckpoint(ckptPath(s.name));
    s.parked = false;
}

void
ServeServer::ensureLive(Session &s)
{
    if (s.sim)
        return;
    buildSimulation(s, /*fromCheckpoint=*/true);
    resumes_ += 1;
    static metrics::Counter &resumes = metrics::counter("serve.resumes");
    resumes.add();
    tracing::instantEvent("serve.session_resume", "serve",
                          "\"session\":\"" +
                              tracing::jsonEscape(s.name) + "\"");
    noteSessionCensus();
}

void
ServeServer::parkSession(Session &s)
{
    if (!s.sim)
        return;
    // Checkpoint first, meta second: the meta file is the commit
    // marker a resume requires, so a crash between the two writes
    // leaves the previous parked generation (or nothing) — never a
    // meta pointing at a missing or half-written checkpoint. Both
    // writes are individually atomic (temp + rename).
    s.sim->saveCheckpoint(ckptPath(s.name));
    s.pendingOutput = s.out->str();

    ByteWriter w;
    w.bytes(kMetaMagic);
    w.u32(kMetaVersion);
    w.u64(s.specHash);
    w.str(s.engine);
    w.str(s.specText);
    w.u8(static_cast<uint8_t>(s.io));
    w.u8(s.trace ? 1 : 0);
    w.u8(s.aluFixed ? 1 : 0);
    w.u32(s.partitions);
    w.u64(s.inputs.size());
    for (int32_t v : s.inputs)
        w.i32(v);
    w.str(s.pendingOutput);
    w.u32(crc32(w.data()));
    writeFileAtomic(metaPath(s.name), w.data());

    s.sim.reset();
    s.out.reset();
    s.parked = true;
    evictions_ += 1;
    static metrics::Counter &evictions =
        metrics::counter("serve.evictions");
    evictions.add();
    tracing::instantEvent("serve.session_evict", "serve",
                          "\"session\":\"" +
                              tracing::jsonEscape(s.name) + "\"");
    noteSessionCensus();
}

void
ServeServer::noteSessionCensus()
{
    uint64_t live = 0;
    {
        std::lock_guard<std::mutex> lock(sessionsMu_);
        for (auto &[name, s] : byName_)
            if (!s->parked)
                ++live;
    }
    static metrics::Gauge &g = metrics::gauge("serve.sessions_live");
    g.set(static_cast<int64_t>(live));
    uint64_t prev = peakLive_.load(std::memory_order_relaxed);
    while (live > prev &&
           !peakLive_.compare_exchange_weak(prev, live,
                                            std::memory_order_relaxed))
    {}
}

void
ServeServer::sweepIdle()
{
    if (opts_.evictAfterMs <= 0)
        return;
    auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<Session>> sessions;
    {
        std::lock_guard<std::mutex> lock(sessionsMu_);
        for (auto &[name, s] : byName_)
            if (!s->parked)
                sessions.push_back(s);
    }
    for (auto &s : sessions) {
        std::unique_lock<std::mutex> lock(s->mu, std::try_to_lock);
        if (!lock.owns_lock() || s->parked || !s->sim)
            continue; // busy sessions are not idle
        auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now - s->lastUsed)
                        .count();
        if (idle < opts_.evictAfterMs)
            continue;
        try {
            parkSession(*s);
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "asim-serve: cannot evict session %s: %s\n",
                         s->name.c_str(), e.what());
            s->lastUsed = now; // back off instead of retrying hot
        }
    }
}

// ---------------------------------------------------------------------------
// Command handlers

std::string
ServeServer::handleOpen(ByteReader &r)
{
    std::string name = r.str("open name");
    std::string specText = r.str("open spec");
    std::string engine = r.str("open engine");
    auto io = static_cast<SessionIo>(r.u8("open io mode"));
    bool trace = r.u8("open trace flag") != 0;
    bool aluFixed = r.u8("open alu flag") != 0;
    uint32_t partitions = r.u32("open partitions");
    if (partitions == 0)
        partitions = 1;
    std::vector<int32_t> inputs = readInputs(r);

    if (!validSessionName(name)) {
        throw SimError("bad session name (want 1-64 chars of "
                       "[A-Za-z0-9._-]): " +
                       name);
    }
    if (io != SessionIo::Null && io != SessionIo::Script)
        throw SimError("bad io mode (interactive I/O cannot be "
                       "multiplexed over sessions)");

    std::shared_ptr<Session> s;
    bool created = false;
    {
        std::lock_guard<std::mutex> lock(sessionsMu_);
        auto it = byName_.find(name);
        if (it != byName_.end()) {
            s = it->second;
        } else if ((s = sessionFromMeta(name))) {
            // Parked by a previous daemon incarnation: adopt it.
            s->id = nextId_++;
            byName_[name] = s;
            byId_[s->id] = s;
        } else {
            if (specText.empty()) {
                throw SimError("unknown session \"" + name +
                               "\" (attach needs an existing session; "
                               "upload a spec to create one)");
            }
            s = std::make_shared<Session>();
            s->id = nextId_++;
            s->name = name;
            s->specText = specText;
            s->engine = engine.empty() ? "vm" : engine;
            s->io = io;
            s->inputs = inputs;
            s->trace = trace;
            s->aluFixed = aluFixed;
            s->partitions = partitions;
            byName_[name] = s;
            byId_[s->id] = s;
            created = true;
        }
    }

    std::lock_guard<std::mutex> lock(s->mu);
    if (created) {
        try {
            buildSimulation(*s, /*fromCheckpoint=*/false);
            sessionsOpened_ += 1;
            static metrics::Counter &opened =
                metrics::counter("serve.sessions_opened");
            opened.add();
            tracing::instantEvent(
                "serve.session_open", "serve",
                "\"session\":\"" + tracing::jsonEscape(s->name) +
                    "\",\"engine\":\"" +
                    tracing::jsonEscape(s->engine) + "\"");
        } catch (...) {
            // A session that never built must not squat on the name.
            std::lock_guard<std::mutex> mapLock(sessionsMu_);
            byName_.erase(s->name);
            byId_.erase(s->id);
            throw;
        }
    } else if (!specText.empty() && specText != s->specText) {
        throw SimError("session \"" + name +
                       "\" already exists with a different spec");
    }
    bool resumed = !created && s->parked;
    ensureLive(*s);
    s->lastUsed = std::chrono::steady_clock::now();
    noteSessionCensus();

    ByteWriter w;
    w.u8(static_cast<uint8_t>(Status::Ok));
    w.u64(s->id);
    w.u64(s->specHash);
    w.u64(s->sim->cycle());
    w.u8(resumed ? 1 : 0);
    w.u64(static_cast<uint64_t>(s->sim->defaultCycles()));
    return std::move(w).take();
}

std::string
ServeServer::handleRun(ByteReader &r)
{
    uint64_t id = r.u64("run session id");
    uint64_t cycles = r.u64("run cycles");
    auto s = findSession(id);
    std::lock_guard<std::mutex> lock(s->mu);
    ensureLive(*s);
    s->lastUsed = std::chrono::steady_clock::now();
    runCommands_ += 1;

    uint64_t t0 = nowNs();
    s->sim->run(cycles);
    uint64_t dt = nowNs() - t0;
    {
        std::lock_guard<std::mutex> statsLock(statsMu_);
        auto &use = engineUse_[s->engine];
        use.cycles += cycles;
        use.ns += dt;
    }
    s->lastUsed = std::chrono::steady_clock::now();

    std::string output = s->out->str();
    s->out->str("");

    ByteWriter w;
    w.u8(static_cast<uint8_t>(Status::Ok));
    w.u64(s->sim->cycle());
    w.str(output);
    return std::move(w).take();
}

std::string
ServeServer::handleValue(ByteReader &r)
{
    uint64_t id = r.u64("value session id");
    std::string name = r.str("value component");
    auto s = findSession(id);
    std::lock_guard<std::mutex> lock(s->mu);
    ensureLive(*s);
    s->lastUsed = std::chrono::steady_clock::now();
    int32_t v = s->sim->value(name);
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Status::Ok));
    w.i32(v);
    return std::move(w).take();
}

std::string
ServeServer::handleSnapshot(ByteReader &r)
{
    uint64_t id = r.u64("snapshot session id");
    auto s = findSession(id);
    std::lock_guard<std::mutex> lock(s->mu);
    ensureLive(*s);
    s->lastUsed = std::chrono::steady_clock::now();
    // The blob IS the checkpoint format — a client may write it to a
    // file and asim-run --restore-from it directly.
    std::string blob = encodeCheckpoint(s->sim->snapshot(),
                                        s->specHash, s->engine);
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Status::Ok));
    w.str(blob);
    return std::move(w).take();
}

std::string
ServeServer::handleRestore(ByteReader &r)
{
    uint64_t id = r.u64("restore session id");
    std::string blob = r.str("restore blob");
    auto s = findSession(id);
    std::lock_guard<std::mutex> lock(s->mu);
    ensureLive(*s);
    s->lastUsed = std::chrono::steady_clock::now();
    CheckpointInfo info;
    EngineSnapshot snap =
        decodeCheckpoint(blob, "restore blob", &info);
    if (info.specHash != s->specHash) {
        throw SimError(
            "restore blob belongs to a different specification "
            "(blob hash " +
            std::to_string(info.specHash) + ", session hash " +
            std::to_string(s->specHash) + ")");
    }
    s->sim->restore(snap);
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Status::Ok));
    w.u64(s->sim->cycle());
    return std::move(w).take();
}

std::string
ServeServer::handleEvict(ByteReader &r)
{
    uint64_t id = r.u64("evict session id");
    auto s = findSession(id);
    std::lock_guard<std::mutex> lock(s->mu);
    if (!s->parked)
        parkSession(*s);
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Status::Ok));
    return std::move(w).take();
}

std::string
ServeServer::handleClose(ByteReader &r)
{
    uint64_t id = r.u64("close session id");
    auto s = findSession(id);
    {
        std::lock_guard<std::mutex> lock(sessionsMu_);
        byName_.erase(s->name);
        byId_.erase(s->id);
    }
    std::lock_guard<std::mutex> lock(s->mu);
    s->sim.reset();
    s->out.reset();
    ::unlink(ckptPath(s->name).c_str());
    ::unlink(metaPath(s->name).c_str());
    tracing::instantEvent("serve.session_close", "serve",
                          "\"session\":\"" +
                              tracing::jsonEscape(s->name) + "\"");
    noteSessionCensus();
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Status::Ok));
    return std::move(w).take();
}

// ---------------------------------------------------------------------------
// Statistics

std::string
ServeServer::statsJson() const
{
    uint64_t live = 0;
    uint64_t parked = 0;
    {
        std::lock_guard<std::mutex> lock(sessionsMu_);
        for (auto &[name, s] : byName_) {
            if (s->parked)
                ++parked;
            else
                ++live;
        }
    }
    uint64_t requests = compileRequests_;
    uint64_t compiles = nativeCompileCount() - nativeCompilesAtStart_;
    uint64_t hits = requests > compiles ? requests - compiles : 0;
    double uptime =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - startTime_)
            .count();
    uint64_t peak = peakLive_.load(std::memory_order_relaxed);
    if (live > peak)
        peak = live; // census may not have run yet this instant

    std::ostringstream j;
    j << "{\"sessions_live\":" << live
      << ",\"sessions_parked\":" << parked
      << ",\"sessions_opened\":" << sessionsOpened_.load()
      << ",\"peak_sessions_live\":" << peak
      << ",\"uptime_seconds\":" << uptime
      << ",\"evictions\":" << evictions_.load()
      << ",\"resumes\":" << resumes_.load()
      << ",\"run_commands\":" << runCommands_.load()
      << ",\"native_compile_requests\":" << requests
      << ",\"native_compile_cache_hits\":" << hits
      << ",\"requests\":{";
    for (size_t i = 1; i < kOpSlots; ++i) {
        if (i > 1)
            j << ",";
        j << "\"" << opName(i)
          << "\":" << opCounts_[i].load(std::memory_order_relaxed);
    }
    j << ",\"unknown\":" << opCounts_[0].load(std::memory_order_relaxed)
      << "},\"engines\":{";
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        bool first = true;
        for (auto &[engine, use] : engineUse_) {
            if (!first)
                j << ",";
            first = false;
            double perSec =
                use.ns > 0 ? 1e9 * static_cast<double>(use.cycles) /
                                 static_cast<double>(use.ns)
                           : 0.0;
            j << "\"" << engine << "\":{\"cycles\":" << use.cycles
              << ",\"ns\":" << use.ns
              << ",\"cycles_per_sec\":" << perSec << "}";
        }
    }
    j << "}}";
    return j.str();
}

std::string
ServeServer::metricsJson() const
{
    double uptime =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - startTime_)
            .count();
    std::ostringstream j;
    j << "{\"uptime_seconds\":" << uptime
      << ",\"stats\":" << statsJson() << ",\"registry\":"
      << metrics::Registry::global().jsonExposition() << "}";
    return j.str();
}

} // namespace asim::serve
