/**
 * @file
 * The asim-serve wire protocol (DESIGN.md §9).
 *
 * Every message — request or response — is one **frame**: a u32
 * little-endian byte length followed by that many body bytes. Frame
 * bodies are encoded/decoded with support/serialize.hh ByteWriter/
 * ByteReader, so the server treats client input with the same
 * hostile-input discipline as checkpoint files: every read is
 * bounds-checked and malformed frames answer ERR, never crash.
 *
 * A request body starts with a u8 opcode; a response body starts
 * with a u8 status (Ok/Error). Responses are returned **in request
 * order per connection**, which is what makes pipelining trivial:
 * a client may send any number of requests before reading replies
 * (FrameChannel buffers writes; the server coalesces response
 * flushes while more requests are already buffered), so interactive
 * stepping stops paying one socket round trip per step.
 *
 * The command vocabulary deliberately mirrors the native engine's
 * `--serve` child protocol (DESIGN.md §5): OPEN (upload+compile) —
 * RUN — VALUE/SNAPSHOT (state) — RESTORE — EVICT/CLOSE — STATS —
 * SHUTDOWN.
 */

#ifndef ASIM_SERVE_PROTOCOL_HH
#define ASIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "support/socket.hh"

namespace asim::serve {

/** Bumped on any incompatible wire change; HELLO carries it.
 *  v2: OPEN carries a u32 partition-lane count after the alu flag.
 *  v3: adds the METRICS opcode (observability scrape). v3 is a pure
 *  superset of v2: the server accepts HELLOs from kMinProtocolVersion
 *  up, and a v2 peer that never sends METRICS sees v2 behavior
 *  byte for byte. */
inline constexpr uint32_t kProtocolVersion = 3;

/** Oldest client HELLO the server still accepts (and oldest server
 *  HELLO-reply a client accepts). */
inline constexpr uint32_t kMinProtocolVersion = 2;

/** HELLO magic, first field of every connection's first request. */
inline constexpr std::string_view kHelloMagic = "ASRV";

/** Ceiling on one frame's body; a longer declared length is a
 *  protocol violation and drops the connection (there is no way to
 *  resync a corrupt length prefix). Large enough for a big spec
 *  upload or checkpoint blob, small enough to bound a hostile
 *  allocation. */
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/** Request opcodes (first byte of a request body). */
enum class Op : uint8_t
{
    Hello = 1,    ///< magic + protocol version check
    Open = 2,     ///< upload spec, open (or resume) a session
    Run = 3,      ///< execute N cycles, stream the output produced
    Value = 4,    ///< read one component's observable value
    Snapshot = 5, ///< full state as a portable checkpoint blob
    Restore = 6,  ///< adopt a checkpoint blob
    Evict = 7,    ///< park the session to disk now
    Close = 8,    ///< delete the session and its artifacts
    Stats = 9,    ///< admin: server statistics as JSON
    Shutdown = 10, ///< admin: stop the daemon cleanly
    Metrics = 11  ///< admin: metrics-registry exposition (v3+)
};

/** Response status (first byte of a response body). */
enum class Status : uint8_t
{
    Ok = 0,
    Error = 1 ///< followed by str diagnostic
};

/** Session I/O wiring carried in OPEN (interactive I/O cannot be
 *  multiplexed over sessions, exactly like batch instances). */
enum class SessionIo : uint8_t
{
    Null = 0,
    Script = 1
};

/**
 * Framed, buffered message channel over a Socket — both sides of
 * the protocol speak through one of these.
 *
 * Reads are buffered (one read(2) may pull many pipelined frames);
 * writes are queued by queueFrame() and flushed explicitly or by
 * the next readFrame() (so a request/response loop can never
 * deadlock on its own unflushed writes). hasBufferedFrame() lets a
 * server coalesce response flushes while more pipelined requests
 * are already waiting in the buffer.
 */
class FrameChannel
{
  public:
    FrameChannel() = default;
    explicit FrameChannel(Socket sock)
        : sock_(std::move(sock))
    {}

    bool valid() const { return sock_.valid(); }
    Socket &socket() { return sock_; }

    /** Read one frame body (flushing queued writes first). @return
     *  false on EOF, error, or an over-limit length prefix */
    bool readFrame(std::string &body);

    /** Queue one frame for a later flush(). */
    void queueFrame(std::string_view body);

    /** Write out everything queued. @return false on a broken peer */
    bool flush();

    /** queueFrame + flush. */
    bool
    writeFrame(std::string_view body)
    {
        queueFrame(body);
        return flush();
    }

    /** True when a complete frame is already buffered — reading it
     *  will not block. */
    bool hasBufferedFrame() const;

  private:
    bool fill(size_t need);

    Socket sock_;
    std::string rbuf_;
    size_t rpos_ = 0;
    std::string wbuf_;
};

/** Build a HELLO request body. */
std::string helloRequest();

/** Build an ERR response body. */
std::string errorResponse(std::string_view message);

} // namespace asim::serve

#endif // ASIM_SERVE_PROTOCOL_HH
