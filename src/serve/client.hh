/**
 * @file
 * Client library for the asim-serve daemon (DESIGN.md §9).
 *
 * A ServeClient is one connection: it connects to an endpoint
 * (`unix:<path>`, `tcp:<host>:<port>`, or a bare socket path),
 * performs the HELLO handshake, and exposes the protocol as typed
 * calls. Server-side failures (ERR responses) surface as SimError
 * carrying the server's diagnostic; a dead or misbehaving server
 * surfaces as SimError naming the endpoint.
 *
 * Pipelining: run() is one round trip. For interactive stepping at
 * rate, queue requests with sendRun() — nothing hits the wire until
 * readRunReply() flushes the batch — then read the replies in order.
 * The daemon answers strictly in request order per connection, so
 * `k` sendRun() calls pair with the next `k` readRunReply() calls.
 */

#ifndef ASIM_SERVE_CLIENT_HH
#define ASIM_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hh"

namespace asim::serve {

/** See file comment. */
class ServeClient
{
  public:
    /** Connect and handshake. @throws SimError on connection or
     *  protocol-version failure */
    explicit ServeClient(const std::string &endpoint);

    struct OpenOptions
    {
        std::string name;     ///< session name (required)
        std::string specText; ///< empty = attach to existing session
        std::string engine = "vm";
        SessionIo io = SessionIo::Null;
        std::vector<int32_t> inputs; ///< scripted inputs (io=Script)
        bool trace = false;          ///< capture the thesis trace
        bool aluFixed = false;       ///< AluSemantics::Fixed
        unsigned partitions = 1;     ///< interp worker lanes (>=1)
    };

    struct OpenResult
    {
        uint64_t id = 0;
        uint64_t specHash = 0;
        uint64_t cycle = 0;
        bool resumed = false; ///< continued from a parked checkpoint
        int64_t defaultCycles = -1; ///< the spec's `=` run length
    };

    /** Open, create-or-attach (see OpenOptions::specText). */
    OpenResult open(const OpenOptions &opts);

    struct RunResult
    {
        uint64_t cycle = 0;
        std::string output; ///< I/O + trace produced by this RUN
    };

    /** Execute `cycles` cycles; one round trip. */
    RunResult run(uint64_t id, uint64_t cycles);

    /** Queue a RUN without touching the wire (pipelining; see file
     *  comment). Pair each call with one readRunReply(). */
    void sendRun(uint64_t id, uint64_t cycles);

    /** Flush queued requests and read the next RUN reply. */
    RunResult readRunReply();

    /** Observable value of component `name`. */
    int32_t value(uint64_t id, std::string_view name);

    /** Full session state as a checkpoint blob — valid as an on-disk
     *  checkpoint file (asim-run --restore-from reads it). */
    std::string snapshot(uint64_t id);

    /** Adopt a checkpoint blob. @return the session's cycle */
    uint64_t restore(uint64_t id, std::string_view blob);

    /** Park the session to disk now. */
    void evict(uint64_t id);

    /** Delete the session and its parked artifacts. */
    void closeSession(uint64_t id);

    /** Admin: the server's statistics JSON. */
    std::string statsJson();

    /** Admin: the server's metrics-registry exposition JSON
     *  (protocol v3; a v2 server answers ERR). */
    std::string metricsJson();

    /** Admin: ask the daemon to shut down cleanly. */
    void shutdownServer();

    /** Protocol version negotiated in the HELLO handshake. */
    uint32_t serverVersion() const { return serverVersion_; }

  private:
    /** One request round trip. @throws SimError on transport failure
     *  or an ERR response */
    std::string call(std::string_view request);

    /** Read one response frame, unwrap the status byte. */
    std::string readResponse();

    std::string endpoint_;
    FrameChannel channel_;
    uint32_t serverVersion_ = kProtocolVersion;
};

} // namespace asim::serve

#endif // ASIM_SERVE_CLIENT_HH
