#include "serve/protocol.hh"

#include "support/serialize.hh"

namespace asim::serve {

namespace {

/** Frames arrive as a u32 LE length prefix; decode by hand so a
 *  partial prefix can wait for more bytes without a ByteReader. */
uint32_t
decodeLen(const char *p)
{
    auto b = [&](int i) {
        return static_cast<uint32_t>(static_cast<unsigned char>(p[i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

} // namespace

bool
FrameChannel::fill(size_t need)
{
    while (rbuf_.size() - rpos_ < need) {
        // Compact before growing: pipelined clients push many small
        // frames through this buffer and it must not grow forever.
        if (rpos_ > 0 && rpos_ == rbuf_.size()) {
            rbuf_.clear();
            rpos_ = 0;
        } else if (rpos_ > (64u << 10)) {
            rbuf_.erase(0, rpos_);
            rpos_ = 0;
        }
        char chunk[64 << 10];
        long got = sock_.readSome(chunk, sizeof(chunk));
        if (got <= 0)
            return false;
        rbuf_.append(chunk, static_cast<size_t>(got));
    }
    return true;
}

bool
FrameChannel::readFrame(std::string &body)
{
    // A blocked read with queued writes would deadlock the peer — but
    // when a complete frame is already buffered this read cannot
    // block, so the flush is deferred and pipelined responses
    // coalesce into one write.
    if (!hasBufferedFrame() && !flush())
        return false;
    if (!fill(4))
        return false;
    uint32_t len = decodeLen(rbuf_.data() + rpos_);
    if (len > kMaxFrameBytes)
        return false;
    if (!fill(4 + static_cast<size_t>(len)))
        return false;
    body.assign(rbuf_, rpos_ + 4, len);
    rpos_ += 4 + static_cast<size_t>(len);
    return true;
}

void
FrameChannel::queueFrame(std::string_view body)
{
    uint32_t len = static_cast<uint32_t>(body.size());
    char prefix[4] = {static_cast<char>(len & 0xff),
                      static_cast<char>((len >> 8) & 0xff),
                      static_cast<char>((len >> 16) & 0xff),
                      static_cast<char>((len >> 24) & 0xff)};
    wbuf_.append(prefix, 4);
    wbuf_.append(body.data(), body.size());
}

bool
FrameChannel::flush()
{
    if (wbuf_.empty())
        return true;
    std::string out;
    out.swap(wbuf_);
    return sock_.writeAll(out);
}

bool
FrameChannel::hasBufferedFrame() const
{
    size_t avail = rbuf_.size() - rpos_;
    if (avail < 4)
        return false;
    uint32_t len = decodeLen(rbuf_.data() + rpos_);
    return len <= kMaxFrameBytes && avail >= 4 + static_cast<size_t>(len);
}

std::string
helloRequest()
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Op::Hello));
    w.str(kHelloMagic);
    w.u32(kProtocolVersion);
    return std::move(w).take();
}

std::string
errorResponse(std::string_view message)
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(Status::Error));
    w.str(message);
    return std::move(w).take();
}

} // namespace asim::serve
