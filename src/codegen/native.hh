/**
 * @file
 * Native pipeline driver: generate C++ -> host compiler -> run.
 *
 * This is the full ASIM II workflow of the thesis (§5.2): code
 * generation, a host-compiler invocation, and a fast native simulation
 * run. Figure 5.1's three ASIM II rows (generate / compile / simulate)
 * map onto NativeResult's three duration fields.
 */

#ifndef ASIM_CODEGEN_NATIVE_HH
#define ASIM_CODEGEN_NATIVE_HH

#include <memory>
#include <optional>
#include <string>

#include "codegen/codegen.hh"

namespace asim {

/** A generated-and-compiled simulator on disk, reusable across runs
 *  (the expensive half of the pipeline, done once) — and, via
 *  compileSpecShared(), shareable read-only across a whole batch of
 *  engine instances that each talk to their own child process. */
struct NativeBuild
{
    double generateSeconds = 0; ///< spec -> C++ text
    double compileSeconds = 0;  ///< host g++ invocation
    std::string workDir;        ///< artifact directory
    std::string generatedPath;  ///< the .cc file on disk
    std::string binaryPath;

    /** True when compileSpec created workDir itself (fresh temp
     *  dir); whoever owns the build removes it then. */
    bool ownsWorkDir = false;

    /// @{ Codegen facts an adapter must agree with at run time.
    bool emitsTrace = false;     ///< CodegenOptions::emitTrace
    bool emitsStateDump = false; ///< CodegenOptions::emitStateDump
    bool serveCapable = false;   ///< CodegenOptions::emitServeLoop
    AluSemantics aluSemantics = AluSemantics::Thesis; ///< baked in
    /// @}
};

/** One execution of a built simulator (the cheap half). */
struct NativeRun
{
    double runSeconds = 0; ///< whole process wall time
    double simSeconds = 0; ///< the loop itself (SIM_NS on stderr)
    int exitCode = 0;      ///< raw wait status from std::system
    std::string stdoutText;
    std::string stderrText;
};

/** Outcome of one generate+compile+run pipeline execution. */
struct NativeResult
{
    double generateSeconds = 0; ///< spec -> C++ text
    double compileSeconds = 0;  ///< host g++ invocation
    double runSeconds = 0;      ///< whole process wall time
    double simSeconds = 0;      ///< the loop itself (SIM_NS on stderr)
    int exitCode = 0;
    std::string stdoutText;     ///< trace + memory-mapped output
    std::string generatedPath;  ///< the .cc file left on disk
    std::string binaryPath;
};

/** True if a host C++ compiler is available. */
bool hostCompilerAvailable();

/**
 * Generate C++ for `rs` and compile it with the host compiler.
 *
 * @param workDir directory for artifacts; empty = fresh temp dir
 *        (recorded in the returned NativeBuild::workDir — the caller
 *        owns cleanup)
 * @throws SimError if no compiler exists or compilation fails
 */
NativeBuild compileSpec(const ResolvedSpec &rs,
                        const CodegenOptions &opts = {},
                        std::string workDir = "");

/**
 * compileSpec() wrapped for sharing: the returned pointer owns the
 * artifacts — when the last holder drops it, a temp-created workDir
 * is removed. A batch of NativeEngine instances holds one of these
 * and spawns one `--serve` child each off the single compiled
 * binary.
 */
std::shared_ptr<const NativeBuild>
compileSpecShared(const ResolvedSpec &rs, const CodegenOptions &opts = {},
                  std::string workDir = "");

/**
 * compileSpecShared() behind a process-wide build cache keyed by
 * (spec identity hash, codegen options): repeated construction of
 * native engines over the same machine — heterogeneous batch
 * manifests with repeated rows in particular — share one
 * generate+compile instead of paying it per job. The cache holds
 * weak references plus a small ring of strong ones, so builds stay
 * alive across back-to-back jobs but the cache never pins unbounded
 * disk. Thread-safe. Always compiles into a cache-owned temp dir;
 * callers that need a specific workDir use compileSpecShared().
 *
 * @param specHash analysis/resolve.hh specIdentityHash(rs); taken as
 *        a parameter so the caller can reuse its own computation
 */
std::shared_ptr<const NativeBuild>
compileSpecCached(const ResolvedSpec &rs, const CodegenOptions &opts,
                  uint64_t specHash);

/** Total generate+compile pipelines this process has run (test and
 *  diagnostics hook for the build cache's hit rate). */
uint64_t nativeCompileCount();

/**
 * Execute a built simulator for `cycles` (the program runs cycles+1
 * loop iterations, thesis semantics). Does not throw on a nonzero
 * exit: the caller inspects NativeRun::exitCode/stderrText.
 *
 * @throws SimError only if the process cannot be launched
 */
NativeRun runBinary(const NativeBuild &build, int64_t cycles,
                    const std::string &stdinText = "");

/**
 * Run the full pipeline (compileSpec + runBinary).
 *
 * @param rs resolved specification
 * @param cycles value for the generated program's cycle argument; the
 *        program executes cycles+1 loop iterations (thesis semantics)
 * @param opts codegen options
 * @param workDir directory for artifacts; empty = fresh temp dir
 * @param stdinText text piped to the program's standard input
 * @throws SimError if the compiler or the program fails
 */
NativeResult compileAndRun(const ResolvedSpec &rs, int64_t cycles,
                           const CodegenOptions &opts = {},
                           std::string workDir = "",
                           const std::string &stdinText = "");

} // namespace asim

#endif // ASIM_CODEGEN_NATIVE_HH
