#include "codegen/native.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "codegen/cpp_backend.hh"
#include "support/logging.hh"
#include "support/serialize.hh"
#include "support/text.hh"

namespace asim {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
    if (!out)
        throw SimError("cannot write " + path);
}

int
shell(const std::string &cmd)
{
    int rc = std::system(cmd.c_str());
    if (rc < 0)
        throw SimError("failed to launch: " + cmd);
    return rc;
}

std::atomic<uint64_t> compileCount{0};

/** Cache key: spec identity x every codegen knob that changes the
 *  emitted program. */
uint64_t
optionsFingerprint(const CodegenOptions &o)
{
    uint64_t bits = 0;
    bits |= o.inlineConstAlu ? 1u : 0u;
    bits |= o.specializeConstMem ? 2u : 0u;
    bits |= o.emitTrace ? 4u : 0u;
    bits |= o.emitDataLatchQuirk ? 8u : 0u;
    bits |= o.emitStateDump ? 16u : 0u;
    bits |= o.emitServeLoop ? 32u : 0u;
    bits |= o.aluSemantics == AluSemantics::Thesis ? 64u : 0u;
    return fnv1a64(o.programName, bits);
}

} // namespace

bool
hostCompilerAvailable()
{
    static const bool available =
        std::system("g++ --version > /dev/null 2>&1") == 0;
    return available;
}

NativeBuild
compileSpec(const ResolvedSpec &rs, const CodegenOptions &opts,
            std::string workDir)
{
    if (!hostCompilerAvailable())
        throw SimError("no host C++ compiler (g++) available");

    bool madeTemp = false;
    if (workDir.empty()) {
        char tmpl[] = "/tmp/asim2-native-XXXXXX";
        char *dir = mkdtemp(tmpl);
        if (!dir)
            throw SimError("mkdtemp failed");
        workDir = dir;
        madeTemp = true;
    }

    NativeBuild build;
    build.workDir = workDir;
    build.ownsWorkDir = madeTemp;
    build.emitsTrace = opts.emitTrace;
    build.emitsStateDump = opts.emitStateDump;
    build.serveCapable = opts.emitServeLoop;
    build.aluSemantics = opts.aluSemantics;
    build.generatedPath = workDir + "/simulator.cc";
    build.binaryPath = workDir + "/simulator";

    compileCount.fetch_add(1, std::memory_order_relaxed);

    // Phase 1: generate code (Figure 5.1 "Generate code").
    auto g0 = Clock::now();
    std::string code = generateCpp(rs, opts);
    writeFile(build.generatedPath, code);
    build.generateSeconds = seconds(g0, Clock::now());

    // Phase 2: host compile (Figure 5.1 "Pascal Compile").
    auto c0 = Clock::now();
    int rc = shell("g++ -O2 -fwrapv -o '" + build.binaryPath + "' '" +
                   build.generatedPath + "' > '" + workDir +
                   "/compile.log' 2>&1");
    build.compileSeconds = seconds(c0, Clock::now());
    if (rc != 0) {
        throw SimError("generated code failed to compile (see " +
                       workDir + "/compile.log)");
    }
    return build;
}

std::shared_ptr<const NativeBuild>
compileSpecShared(const ResolvedSpec &rs, const CodegenOptions &opts,
                  std::string workDir)
{
    auto *build = new NativeBuild(
        compileSpec(rs, opts, std::move(workDir)));
    return std::shared_ptr<const NativeBuild>(
        build, [](const NativeBuild *b) {
            if (b->ownsWorkDir && !b->workDir.empty()) {
                std::error_code ec;
                std::filesystem::remove_all(b->workDir, ec);
            }
            delete b;
        });
}

std::shared_ptr<const NativeBuild>
compileSpecCached(const ResolvedSpec &rs, const CodegenOptions &opts,
                  uint64_t specHash)
{
    using Key = std::pair<uint64_t, uint64_t>;
    // Weak map: any build still referenced by an engine is reused for
    // free. Strong ring: the most recent few builds survive the gap
    // between one job dropping its engines and the next identical job
    // constructing its own (sequential manifest rows).
    static std::mutex mu;
    static std::map<Key, std::weak_ptr<const NativeBuild>> cache;
    static std::deque<std::shared_ptr<const NativeBuild>> recent;
    constexpr size_t kKeepRecent = 8;

    const Key key{specHash, optionsFingerprint(opts)};
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(key);
        if (it != cache.end()) {
            if (auto hit = it->second.lock())
                return hit;
            cache.erase(it);
        }
    }

    // Compile outside the lock: a long host-compiler run must not
    // serialize unrelated cache hits. Two threads racing on the same
    // key may both compile; the second insert wins the map and both
    // builds stay valid for their holders.
    std::shared_ptr<const NativeBuild> build =
        compileSpecShared(rs, opts);

    std::lock_guard<std::mutex> lock(mu);
    cache[key] = build;
    recent.push_back(build);
    while (recent.size() > kKeepRecent)
        recent.pop_front();
    for (auto it = cache.begin(); it != cache.end();) {
        if (it->second.expired())
            it = cache.erase(it);
        else
            ++it;
    }
    return build;
}

uint64_t
nativeCompileCount()
{
    return compileCount.load(std::memory_order_relaxed);
}

NativeRun
runBinary(const NativeBuild &build, int64_t cycles,
          const std::string &stdinText)
{
    // Phase 3: run (Figure 5.1 "Simulation time").
    const std::string outPath = build.workDir + "/stdout.txt";
    const std::string errPath = build.workDir + "/stderr.txt";
    const std::string inPath = build.workDir + "/stdin.txt";
    writeFile(inPath, stdinText);

    NativeRun run;
    auto r0 = Clock::now();
    run.exitCode =
        shell("'" + build.binaryPath + "' " + std::to_string(cycles) +
              " < '" + inPath + "' > '" + outPath + "' 2> '" + errPath +
              "'");
    run.runSeconds = seconds(r0, Clock::now());
    run.stdoutText = readFile(outPath);
    run.stderrText = readFile(errPath);

    // The program self-times its loop and reports SIM_NS on stderr.
    size_t at = run.stderrText.find("SIM_NS=");
    if (at != std::string::npos) {
        run.simSeconds =
            std::strtod(run.stderrText.c_str() + at + 7, nullptr) /
            1e9;
    }
    return run;
}

NativeResult
compileAndRun(const ResolvedSpec &rs, int64_t cycles,
              const CodegenOptions &opts, std::string workDir,
              const std::string &stdinText)
{
    NativeBuild build = compileSpec(rs, opts, std::move(workDir));
    NativeRun run = runBinary(build, cycles, stdinText);

    NativeResult res;
    res.generateSeconds = build.generateSeconds;
    res.compileSeconds = build.compileSeconds;
    res.runSeconds = run.runSeconds;
    res.simSeconds = run.simSeconds;
    res.exitCode = run.exitCode;
    res.stdoutText = run.stdoutText;
    res.generatedPath = build.generatedPath;
    res.binaryPath = build.binaryPath;
    if (run.exitCode != 0) {
        throw SimError("generated simulator exited with status " +
                       std::to_string(run.exitCode) + ": " +
                       run.stderrText);
    }
    return res;
}

} // namespace asim
