#include "codegen/native.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/cpp_backend.hh"
#include "support/logging.hh"
#include "support/text.hh"

namespace asim {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
    if (!out)
        throw SimError("cannot write " + path);
}

int
shell(const std::string &cmd)
{
    int rc = std::system(cmd.c_str());
    if (rc < 0)
        throw SimError("failed to launch: " + cmd);
    return rc;
}

} // namespace

bool
hostCompilerAvailable()
{
    static const bool available =
        std::system("g++ --version > /dev/null 2>&1") == 0;
    return available;
}

NativeResult
compileAndRun(const ResolvedSpec &rs, int64_t cycles,
              const CodegenOptions &opts, std::string workDir,
              const std::string &stdinText)
{
    if (!hostCompilerAvailable())
        throw SimError("no host C++ compiler (g++) available");

    if (workDir.empty()) {
        char tmpl[] = "/tmp/asim2-native-XXXXXX";
        char *dir = mkdtemp(tmpl);
        if (!dir)
            throw SimError("mkdtemp failed");
        workDir = dir;
    }

    NativeResult res;
    res.generatedPath = workDir + "/simulator.cc";
    res.binaryPath = workDir + "/simulator";

    // Phase 1: generate code (Figure 5.1 "Generate code").
    auto g0 = Clock::now();
    std::string code = generateCpp(rs, opts);
    writeFile(res.generatedPath, code);
    res.generateSeconds = seconds(g0, Clock::now());

    // Phase 2: host compile (Figure 5.1 "Pascal Compile").
    auto c0 = Clock::now();
    int rc = shell("g++ -O2 -fwrapv -o '" + res.binaryPath + "' '" +
                   res.generatedPath + "' > '" + workDir +
                   "/compile.log' 2>&1");
    res.compileSeconds = seconds(c0, Clock::now());
    if (rc != 0) {
        throw SimError("generated code failed to compile (see " +
                       workDir + "/compile.log)");
    }

    // Phase 3: run (Figure 5.1 "Simulation time").
    const std::string outPath = workDir + "/stdout.txt";
    const std::string errPath = workDir + "/stderr.txt";
    const std::string inPath = workDir + "/stdin.txt";
    writeFile(inPath, stdinText);

    auto r0 = Clock::now();
    rc = shell("'" + res.binaryPath + "' " + std::to_string(cycles) +
               " < '" + inPath + "' > '" + outPath + "' 2> '" + errPath +
               "'");
    res.runSeconds = seconds(r0, Clock::now());
    res.exitCode = rc;
    res.stdoutText = readFile(outPath);

    // The program self-times its loop and reports SIM_NS on stderr.
    std::string err = readFile(errPath);
    size_t at = err.find("SIM_NS=");
    if (at != std::string::npos) {
        res.simSeconds =
            std::strtod(err.c_str() + at + 7, nullptr) / 1e9;
    }
    if (rc != 0) {
        throw SimError("generated simulator exited with status " +
                       std::to_string(rc) + ": " + err);
    }
    return res;
}

} // namespace asim
