/**
 * @file
 * Pascal backend: reproduces the shape of the code ASIM II emitted
 * (thesis Appendix E, Figures 4.1-4.3).
 *
 * The output is golden-tested against the figures but not executed —
 * there is no Pascal compiler in this environment; the executable
 * pipeline uses the C++ backend (codegen/cpp_backend.hh), which
 * preserves the compile-then-simulate structure.
 */

#ifndef ASIM_CODEGEN_PASCAL_BACKEND_HH
#define ASIM_CODEGEN_PASCAL_BACKEND_HH

#include "codegen/codegen.hh"

namespace asim {

/** Implementation class behind generatePascal(). */
class PascalBackend
{
  public:
    PascalBackend(const ResolvedSpec &rs, const CodegenOptions &opts);

    /** Generate the complete program text. */
    std::string generate();

  private:
    std::string expr(const ResolvedExpr &e) const;
    void emitHeader();
    void emitVarDecls();
    void emitLand();
    void emitInitValues();
    void emitDologic();
    void emitIoProcs();
    void emitMain();
    void emitAlu(const CombComp &c);
    void emitSelector(const CombComp &c);
    void emitTraceLine();
    void emitMemoryLatches();
    void emitMemoryUpdate(const MemDesc &m);
    void emitMemoryTraces(const MemDesc &m);

    const ResolvedSpec &rs_;
    CodegenOptions opts_;
    CodegenContext ctx_;
    std::string out_;

    /** Append a line. */
    void ln(const std::string &s) { out_ += s; out_ += '\n'; }
};

} // namespace asim

#endif // ASIM_CODEGEN_PASCAL_BACKEND_HH
