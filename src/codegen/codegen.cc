#include "codegen/codegen.hh"

#include <sstream>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace asim {

CodegenContext::CodegenContext(const ResolvedSpec &rs,
                               std::string varPrefix,
                               std::string tempPrefix)
    : rs_(rs),
      varPrefix_(std::move(varPrefix)),
      tempPrefix_(std::move(tempPrefix))
{
    slotNames_.resize(rs.numVarSlots);
    for (const auto &[name, slot] : rs.varSlots)
        slotNames_[slot] = name;
    memNames_.resize(rs.mems.size());
    for (const auto &[name, idx] : rs.memIndexes)
        memNames_[idx] = name;
}

std::string
CodegenContext::varName(int slot) const
{
    return varPrefix_ + slotNames_[slot];
}

std::string
CodegenContext::memArrayName(int idx) const
{
    return varPrefix_ + memNames_[idx];
}

std::string
CodegenContext::tempName(int idx) const
{
    return tempPrefix_ + memNames_[idx];
}

const std::string &
CodegenContext::slotComponent(int slot) const
{
    return slotNames_[slot];
}

const std::string &
CodegenContext::memComponent(int idx) const
{
    return memNames_[idx];
}

std::string
CodegenContext::paren(const std::string &rendered)
{
    if (rendered.find(" + ") == std::string::npos)
        return rendered;
    return "(" + rendered + ")";
}

std::string
CodegenContext::renderExpr(const ResolvedExpr &e,
                           const std::string &divKeyword) const
{
    if (e.isConstant())
        return std::to_string(e.constTotal);

    std::ostringstream os;
    bool first = true;
    // Thesis `expr` scans right-to-left, so the rightmost source term
    // is rendered first and the folded constant comes last.
    for (auto it = e.terms.rbegin(); it != e.terms.rend(); ++it) {
        const ResolvedTerm &t = *it;
        if (!first)
            os << " + ";
        first = false;

        std::string name = t.bank == ResolvedTerm::Bank::Var
                               ? varName(t.slot)
                               : tempName(t.slot);
        if (t.whole) {
            os << name;
            if (t.shift > 0)
                os << " * " << highbit(t.shift);
        } else {
            os << "land(" << name << ", " << t.mask << ")";
            if (t.shift < 0)
                os << ' ' << divKeyword << ' ' << highbit(-t.shift);
            else if (t.shift > 0)
                os << " * " << highbit(t.shift);
        }
    }
    if (e.constTotal != 0)
        os << " + " << e.constTotal;
    return os.str();
}

} // namespace asim
