/**
 * @file
 * Shared code-generation infrastructure for the Pascal and C++
 * backends.
 *
 * Both backends render resolved expressions with the exact arithmetic
 * the thesis' `expr` procedure emits: extract a field with
 * `land(value, mask)`, then move it into its concatenation position by
 * multiplying or dividing by a power of two, and join fields with `+`
 * (rightmost term first, constants last) — e.g.
 * `land(ljbrom, 256) div 256 + 12`.
 */

#ifndef ASIM_CODEGEN_CODEGEN_HH
#define ASIM_CODEGEN_CODEGEN_HH

#include <string>
#include <vector>

#include "analysis/resolve.hh"
#include "lang/alu_ops.hh"

namespace asim {

/** Options shared by both source backends. */
struct CodegenOptions
{
    /** Inline ALUs with a constant function (§4.4). */
    bool inlineConstAlu = true;

    /** Specialize memories with a constant operation (§4.4). */
    bool specializeConstMem = true;

    /** Emit the per-cycle trace line and traced read/write messages.
     *  Disabling reproduces a "production" simulator build (ablation
     *  for the benches; the thesis always traced). */
    bool emitTrace = true;

    /** Pascal only: emit the vestigial `data<name> := temp<name>`
     *  latch exactly as Appendix E does (it is never read). */
    bool emitDataLatchQuirk = true;

    /** C++ only: emit a machine-readable dump of the machine state
     *  (`STATE_V <slot> <value>`, `STATE_M <index> <temp> <adr>
     *  <opn>`, `STATE_C <index> <cell> <value>`, terminated by
     *  `STATE_END`): on stderr after the one-shot simulation loop,
     *  or as the `STATE` command's payload in serve mode. The native
     *  engine adapter parses it to reconstruct MachineState across
     *  the process boundary. */
    bool emitStateDump = false;

    /** C++ only: emit the `--serve` persistent command loop. A
     *  simulator built with this option, launched as
     *  `simulator --serve`, reads line-oriented commands on stdin
     *  (`INPUT <n>`, `RUN <n>`, `RESET`, `STATE`, `SNAPSHOT`,
     *  `RESTORE <n>`, `STATS`, `QUIT`) and answers each with
     *  `OK <cycle> <ns> <bytes>\n` followed by exactly <bytes> of
     *  payload on stdout — the framing the NativeEngine adapter
     *  speaks (DESIGN.md §5). SNAPSHOT is STATE plus the scripted-
     *  input cursor (`STATE_I <ops> <bytepos>`); RESTORE takes a
     *  length-framed payload in the same line format (plus
     *  `STATE_CYC <n>`) and overwrites state, cycle, and input
     *  cursor in O(state). The one-shot `simulator [cycles]` entry
     *  point is kept unchanged. */
    bool emitServeLoop = false;

    /** ALU shift-left semantics baked into the generated dologic. */
    AluSemantics aluSemantics = AluSemantics::Thesis;

    /** Generated program name (Pascal `program <name>`). */
    std::string programName = "simulator";
};

/** Name tables + expression rendering shared by the backends. */
class CodegenContext
{
  public:
    /**
     * @param rs resolved spec
     * @param varPrefix prefix for combinational outputs and memory
     *        cell arrays (the thesis used `ljb`)
     * @param tempPrefix prefix for memory output latches (`temp`)
     */
    CodegenContext(const ResolvedSpec &rs, std::string varPrefix,
                   std::string tempPrefix);

    const ResolvedSpec &rs() const { return rs_; }

    /** Name of combinational slot `slot`'s variable. */
    std::string varName(int slot) const;

    /** Name of memory `idx`'s cell array. */
    std::string memArrayName(int idx) const;

    /** Name of memory `idx`'s output latch. */
    std::string tempName(int idx) const;

    /** Plain component name of combinational slot / memory index. */
    const std::string &slotComponent(int slot) const;
    const std::string &memComponent(int idx) const;

    /**
     * Render a resolved expression.
     *
     * @param e the expression
     * @param divKeyword the integer division operator (`div` / `/`)
     */
    std::string renderExpr(const ResolvedExpr &e,
                           const std::string &divKeyword) const;

    /** Wrap a rendered expression in parentheses only when it is a
     *  multi-term sum (single-term operands keep the exact thesis
     *  output shape; multi-term operands stay correct under operator
     *  precedence — the 1986 generator emitted them bare). */
    static std::string paren(const std::string &rendered);

  private:
    const ResolvedSpec &rs_;
    std::string varPrefix_;
    std::string tempPrefix_;
    std::vector<std::string> slotNames_;
    std::vector<std::string> memNames_;
};

/** Generate the Appendix-E-style Pascal program. */
std::string generatePascal(const ResolvedSpec &rs,
                           const CodegenOptions &opts = {});

/** Generate the equivalent standalone C++ program. The program takes
 *  the cycle count as argv[1] (defaulting to the spec's `=` value),
 *  runs `cycles+1` loop iterations exactly like the thesis' Pascal,
 *  writes trace/I/O to stdout, and prints `SIM_NS=<ns>` (the simulation
 *  loop's own duration) to stderr. */
std::string generateCpp(const ResolvedSpec &rs,
                        const CodegenOptions &opts = {});

} // namespace asim

#endif // ASIM_CODEGEN_CODEGEN_HH
