/**
 * @file
 * C++ backend.
 *
 * Emits a standalone, dependency-free C++ translation unit with the
 * same structure as the thesis' generated Pascal (variables per
 * combinational output; temp/adr/opn latches and a cell array per
 * memory; land/dologic/sinput/soutput helpers; the per-cycle body in
 * one flat docycle() function). Output formats (trace lines,
 * memory-mapped I/O) match the library engines byte-for-byte so the
 * three execution systems can be compared directly.
 *
 * With CodegenOptions::emitServeLoop the unit additionally carries
 * the persistent `--serve` command loop (INPUT/RUN/RESET/STATE/
 * SNAPSHOT/RESTORE/STATS/QUIT with length-framed responses) that the
 * NativeEngine adapter drives over pipes — see DESIGN.md §5.
 * SNAPSHOT extends the STATE dump with the scripted-input cursor;
 * RESTORE overwrites the whole machine state, cycle counter, and
 * input cursor from a length-framed payload in the same line format,
 * making adapter-side restore O(state) instead of replay-from-zero.
 * The one-shot `simulator [cycles]` entry point is unchanged either
 * way.
 *
 * Compile the output with `g++ -O2 -fwrapv` — the library's value
 * model is wrapping 32-bit two's-complement arithmetic, and -fwrapv
 * makes the emitted `+`/`-`/`*` expressions implement it exactly.
 */

#ifndef ASIM_CODEGEN_CPP_BACKEND_HH
#define ASIM_CODEGEN_CPP_BACKEND_HH

#include "codegen/codegen.hh"

namespace asim {

/** Implementation class behind generateCpp(). */
class CppBackend
{
  public:
    CppBackend(const ResolvedSpec &rs, const CodegenOptions &opts);

    /** Generate the complete translation unit. */
    std::string generate();

  private:
    std::string expr(const ResolvedExpr &e) const;
    std::string pf() const;
    void emitHeader();
    void emitState();
    void emitServeHelpers();
    void emitHelpers();
    void emitInitValues();
    void emitResetState();
    void emitAlu(const CombComp &c);
    void emitSelector(const CombComp &c);
    void emitTraceLine();
    void emitMemoryLatches();
    void emitMemoryUpdate(const MemDesc &m);
    void emitMemoryTraces(const MemDesc &m);
    void emitDoCycle();
    void emitStateDump();
    void emitRestoreState();
    void emitServeLoop();
    void emitMain();

    const ResolvedSpec &rs_;
    CodegenOptions opts_;
    CodegenContext ctx_;
    std::string out_;

    void ln(const std::string &s) { out_ += s; out_ += '\n'; }
};

} // namespace asim

#endif // ASIM_CODEGEN_CPP_BACKEND_HH
