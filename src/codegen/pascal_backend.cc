#include "codegen/pascal_backend.hh"

#include <sstream>

#include "support/bitops.hh"

namespace asim {

PascalBackend::PascalBackend(const ResolvedSpec &rs,
                             const CodegenOptions &opts)
    : rs_(rs), opts_(opts), ctx_(rs, "ljb", "temp")
{}

std::string
PascalBackend::expr(const ResolvedExpr &e) const
{
    return ctx_.renderExpr(e, "div");
}

void
PascalBackend::emitHeader()
{
    ln("program " + opts_.programName + " (input, output);");
    ln("{#" + rs_.spec.comment + "}");
}

void
PascalBackend::emitVarDecls()
{
    // One long var list: combinational outputs, then per-memory
    // temp/adr/data/opn scalars, exactly like Appendix E.
    std::ostringstream os;
    os << "var ";
    bool first = true;
    auto add = [&](const std::string &name) {
        if (!first)
            os << ", ";
        first = false;
        os << name;
    };
    for (int slot = 0; slot < rs_.numVarSlots; ++slot)
        add(ctx_.varName(slot));
    for (const auto &m : rs_.mems) {
        add(ctx_.tempName(m.index));
        add("adr" + m.name);
        if (opts_.emitDataLatchQuirk)
            add("data" + m.name);
        add("opn" + m.name);
    }
    os << ": integer;";
    ln(os.str());
    ln("    cycles, cyclecount: integer;");
    for (const auto &m : rs_.mems) {
        ln("    " + ctx_.memArrayName(m.index) + ": array[0.." +
           std::to_string(m.size - 1) + "] of integer;");
    }
}

void
PascalBackend::emitLand()
{
    ln("");
    ln("function land (a, b: integer): integer;");
    ln("type bitnos = 0..31;");
    ln("     bigset = set of bitnos;");
    ln("var intset: record case boolean of");
    ln("            false: (i, j: integer);");
    ln("            true: (x, y: bigset)");
    ln("            end;");
    ln("begin");
    ln("    with intset do begin");
    ln("        i := a;");
    ln("        j := b;");
    ln("        x := x * y;");
    ln("        land := i");
    ln("    end");
    ln("end {land};");
}

void
PascalBackend::emitInitValues()
{
    ln("");
    ln("procedure initvalues;");
    ln("var i: integer;");
    ln("begin");
    for (const auto &m : rs_.mems) {
        const std::string arr = ctx_.memArrayName(m.index);
        if (!m.init.empty()) {
            for (size_t i = 0; i < m.init.size(); ++i) {
                ln("    " + arr + "[" + std::to_string(i) +
                   "] := " + std::to_string(m.init[i]) + ";");
            }
        } else {
            ln("    for i := 0 to " + std::to_string(m.size - 1) +
               " do");
            ln("        " + arr + "[i] := 0;");
        }
        ln("    " + ctx_.tempName(m.index) + " := 0;");
    }
    ln("end; {initvalues}");
}

void
PascalBackend::emitDologic()
{
    ln("");
    ln("function dologic (funct, left, right: integer): integer;");
    ln("const mask = " + std::to_string(kValueMask) + ";");
    ln("var value: integer;");
    ln("begin");
    ln("    value := 0;");
    ln("    case funct of");
    ln("      0 : value := 0;");
    ln("      1 : value := right;");
    ln("      2 : value := left;");
    ln("      3 : value := mask - left;");
    ln("      4 : value := left + right;");
    ln("      5 : value := left - right;");
    if (opts_.aluSemantics == AluSemantics::Thesis) {
        ln("      6 : while (right > 0) and (left <> 0) do begin");
        ln("              left := land(left + left, mask);");
        ln("              value := left;");
        ln("              right := right - 1;");
        ln("          end;");
    } else {
        ln("      6 : begin");
        ln("              value := land(left, mask);");
        ln("              while (right > 0) and (value <> 0) do begin");
        ln("                  value := land(value + value, mask);");
        ln("                  right := right - 1;");
        ln("              end;");
        ln("          end;");
    }
    ln("      7 : value := left * right;");
    ln("      8 : value := land(left, right);");
    ln("      9 : value := left + right - land(left, right);");
    ln("      10: value := left + right - land(left, right) * 2;");
    ln("      11: value := 0;");
    ln("      12: if left = right then value := 1;");
    ln("      13: if left < right then value := 1");
    ln("    end; {case}");
    ln("    dologic := value;");
    ln("end; {dologic}");
}

void
PascalBackend::emitIoProcs()
{
    ln("");
    ln("function sinput (address: integer): integer;");
    ln("var datum: char;");
    ln("    data: integer;");
    ln("begin");
    ln("    if address = 0 then begin");
    ln("        read(input, datum);");
    ln("        sinput := ord(datum)");
    ln("    end");
    ln("    else if address = 1 then begin");
    ln("        read(input, data);");
    ln("        sinput := data");
    ln("    end");
    ln("    else begin");
    ln("        write(output, 'Input from address ', address:1, ': ');");
    ln("        readln(input, data);");
    ln("        sinput := data;");
    ln("    end");
    ln("end; {sinput}");
    ln("");
    ln("procedure soutput (address, data: integer);");
    ln("begin");
    ln("    if address = 0 then writeln(output, chr(data))");
    ln("    else if address = 1 then writeln(output, data)");
    ln("    else writeln(output, 'Output to address ', address:1,");
    ln("                 ': ', data:1)");
    ln("end; {soutput}");
}

void
PascalBackend::emitAlu(const CombComp &c)
{
    const std::string dst = ctx_.varName(c.slot);
    const std::string l = expr(c.left);
    const std::string r = expr(c.right);
    const std::string lp = CodegenContext::paren(l);
    const std::string rp = CodegenContext::paren(r);

    if (!c.functConst || !opts_.inlineConstAlu) {
        ln(dst + " := dologic(" + expr(c.funct) + ", " + l + ", " + r +
           ");");
        return;
    }

    switch (c.functValue) {
      case kAluZero:
      case kAluUnused:
        ln(dst + " := 0;");
        break;
      case kAluRight:
        ln(dst + " := " + r + ";");
        break;
      case kAluLeft:
        ln(dst + " := " + l + ";");
        break;
      case kAluNot:
        ln(dst + " := " + std::to_string(kValueMask) + " - " + lp +
           ";");
        break;
      case kAluAdd:
        ln(dst + " := " + l + " + " + r + ";");
        break;
      case kAluSub:
        ln(dst + " := " + l + " - " + rp + ";");
        break;
      case kAluShl:
        ln(dst + " := dologic(6, " + l + ", " + r + ");");
        break;
      case kAluMul:
        ln(dst + " := " + lp + " * " + rp + ";");
        break;
      case kAluAnd:
        ln(dst + " := land(" + l + ", " + r + ");");
        break;
      case kAluOr:
        ln(dst + " := " + l + " + " + r + " - land(" + l + ", " + r +
           ");");
        break;
      case kAluXor:
        ln(dst + " := " + l + " + " + r + " - land(" + l + ", " + r +
           ") * 2;");
        break;
      case kAluEq:
        ln("if " + l + " = " + r + " then " + dst + " := 1");
        ln("else " + dst + " := 0;");
        break;
      case kAluLt:
        ln("if " + l + " < " + r + " then " + dst + " := 1");
        ln("else " + dst + " := 0;");
        break;
    }
}

void
PascalBackend::emitSelector(const CombComp &c)
{
    const std::string dst = ctx_.varName(c.slot);
    ln("case " + expr(c.select) + " of");
    for (size_t i = 0; i < c.cases.size(); ++i) {
        std::string sep = i + 1 == c.cases.size() ? "" : ";";
        ln("  " + std::to_string(i) + " : " + dst + " := " +
           expr(c.cases[i]) + sep);
    }
    ln("end;");
}

void
PascalBackend::emitTraceLine()
{
    ln("write('Cycle ', cyclecount:3);");
    for (const auto &item : rs_.traceList) {
        std::string v = item.isMem ? ctx_.tempName(item.slot)
                                   : ctx_.varName(item.slot);
        ln("write(' " + item.name + "= ', " + v + ":1);");
    }
    ln("writeln;");
}

void
PascalBackend::emitMemoryLatches()
{
    for (const auto &m : rs_.mems) {
        ln("adr" + m.name + " := " + expr(m.addr) + ";");
        if (opts_.emitDataLatchQuirk) {
            // Appendix E latches data<name> := temp<name>; the value
            // is never read (the data expression is re-evaluated in
            // the update phase). Kept for fidelity.
            ln("data" + m.name + " := " + ctx_.tempName(m.index) + ";");
        }
        ln("opn" + m.name + " := " + expr(m.opn) + ";");
    }
}

void
PascalBackend::emitMemoryUpdate(const MemDesc &m)
{
    const std::string temp = ctx_.tempName(m.index);
    const std::string arr = ctx_.memArrayName(m.index);
    const std::string adr = "adr" + m.name;
    const std::string opn = "opn" + m.name;

    if (m.opnConst && opts_.specializeConstMem) {
        switch (land(m.opnValue, 3)) {
          case mem_op::kRead:
            ln(temp + " := " + arr + "[" + adr + "];");
            break;
          case mem_op::kWrite:
            ln(temp + " := " + expr(m.data) + ";");
            ln(arr + "[" + adr + "] := " + temp + ";");
            break;
          case mem_op::kInput:
            ln(temp + " := sinput(" + adr + ");");
            break;
          case mem_op::kOutput:
            ln(temp + " := " + expr(m.data) + ";");
            ln("soutput(" + adr + ", " + temp + ");");
            break;
        }
        return;
    }

    ln("case land(" + opn + ", 3) of");
    ln("  0: " + temp + " := " + arr + "[" + adr + "];");
    ln("  1: begin");
    ln("       " + temp + " := " + expr(m.data) + ";");
    ln("       " + arr + "[" + adr + "] := " + temp);
    ln("     end;");
    ln("  2: " + temp + " := sinput(" + adr + ");");
    ln("  3: begin");
    ln("       " + temp + " := " + expr(m.data) + ";");
    ln("       soutput(" + adr + ", " + temp + ");");
    ln("     end");
    ln("end; {case}");
}

void
PascalBackend::emitMemoryTraces(const MemDesc &m)
{
    if (!opts_.emitTrace)
        return;
    const std::string temp = ctx_.tempName(m.index);
    const std::string adr = "adr" + m.name;
    const std::string opn = "opn" + m.name;

    const std::string wr = "writeln('Write to " + m.name + " at ', " +
                           adr + ":1, ': ', " + temp + ":1);";
    const std::string rd = "writeln('Read from " + m.name + " at ', " +
                           adr + ":1, ': ', " + temp + ":1);";

    switch (m.traceWrites) {
      case MemDesc::TraceMode::Always:
        ln(wr);
        break;
      case MemDesc::TraceMode::Runtime:
        ln("if land(" + opn + ", 5) = 5 then");
        ln("    " + wr);
        break;
      case MemDesc::TraceMode::Never:
        break;
    }
    switch (m.traceReads) {
      case MemDesc::TraceMode::Always:
        ln(rd);
        break;
      case MemDesc::TraceMode::Runtime:
        ln("if land(" + opn + ", 9) = 8 then");
        ln("    " + rd);
        break;
      case MemDesc::TraceMode::Never:
        break;
    }
}

void
PascalBackend::emitMain()
{
    ln("");
    ln("begin");
    ln("initvalues;");
    ln("cycles := " + std::to_string(rs_.spec.cycles) + ";");
    ln("if cycles = 0 then begin");
    ln("    writeln('Number of cycles to trace');");
    ln("    read(cycles);");
    ln("end;");
    ln("cyclecount := 0;");
    ln("while cyclecount <= cycles do begin");

    for (const auto &c : rs_.comb) {
        if (c.kind == CompKind::Alu)
            emitAlu(c);
        else
            emitSelector(c);
    }

    if (opts_.emitTrace)
        emitTraceLine();

    emitMemoryLatches();
    for (const auto &m : rs_.mems) {
        emitMemoryUpdate(m);
        emitMemoryTraces(m);
    }

    ln("cyclecount := cyclecount + 1;");
    ln("if cyclecount = cycles + 1 then begin");
    ln("    writeln('Continue to cycle (0 to quit)');");
    ln("    read(cycles);");
    ln("end;");
    ln("end; {while}");
    ln("end.");
}

std::string
PascalBackend::generate()
{
    out_.clear();
    emitHeader();
    emitVarDecls();
    emitLand();
    emitInitValues();
    emitDologic();
    emitIoProcs();
    emitMain();
    return out_;
}

std::string
generatePascal(const ResolvedSpec &rs, const CodegenOptions &opts)
{
    return PascalBackend(rs, opts).generate();
}

} // namespace asim
